(* The farm round loop. Each round: allocate → dispatch to a domain
   pool → join → reward the bandit, bump farm.* counters, persist each
   ran campaign's store generation, emit checkpoints. Campaigns are
   single-shard and never share mutable state; the pool only decides
   which domain runs which campaign, never what the campaign does. *)

type campaign_result = {
  fc_campaign : Store.campaign;
  fc_rounds : int;
  fc_allocated : int;
  fc_executed : int;
  fc_execs_done : int;
  fc_branches : int;
  fc_coverage_keys : int;
  fc_new_keys : int;
  fc_crashes_unique : int;
  fc_logic_unique : int;
  fc_bugs : string list;
  fc_generation : int;
  fc_resumed_from : int option;
  fc_finished : bool;
  fc_error : string option;
}

type result = {
  fr_campaigns : campaign_result list;
  fr_rounds : int;
  fr_allocated : int;
  fr_metrics : Telemetry.Registry.t;
  fr_warnings : string list;
}

let coverage_keys (fz : Fuzz.Driver.fuzzer) =
  let h = fz.Fuzz.Driver.f_harness in
  Fuzz.Harness.branches h
  + (match Fuzz.Harness.grammar_virgin h with
     | Some g -> Coverage.Bitmap.count_nonzero g
     | None -> 0)

type cstate = {
  cs_campaign : Store.campaign;
  cs_dir : string;
  cs_fuzzer : Fuzz.Driver.fuzzer;
  cs_acc : Store.acc;
  cs_prior_execs : int;  (* execs_done carried in from the store *)
  cs_epoch : int;
  cs_resumed_from : int option;
  mutable cs_keys : int;        (* coverage keys at last observation *)
  cs_start_keys : int;
  mutable cs_rounds : int;
  mutable cs_allocated : int;
  mutable cs_generation : int;
  mutable cs_error : string option;
}

let execs_done st = st.cs_prior_execs + Fuzz.Harness.execs st.cs_fuzzer.Fuzz.Driver.f_harness

let remaining st = st.cs_campaign.sc_budget - execs_done st

let finished st = remaining st <= 0

let alive st = st.cs_error = None && not (finished st)

let empty_compact = lazy (Coverage.Bitmap.compact_of_cells [])

(* One round's deal, shared by both backends: the policy's allocation
   over active arms, capped by each arm's remaining budget, with the
   overflow re-dealt to arms that still have spare capacity so the
   round's deal stays whole. *)
let deal_round ~policy ~bandit ~round_budget ~active ~remaining =
  let n = Array.length active in
  let alloc, pulls =
    match policy with
    | Spec.Bandit -> Bandit.allocate bandit ~budget:round_budget ~active
    | Spec.Round_robin ->
      let n_active =
        Array.fold_left (fun a b -> if b then a + 1 else a) 0 active
      in
      let alloc = Array.make n 0 and pulls = Array.make n 0 in
      if n_active > 0 then begin
        let base = round_budget / n_active
        and rem = ref (round_budget mod n_active) in
        Array.iteri
          (fun i is_active ->
             if is_active then begin
               alloc.(i) <- base + (if !rem > 0 then 1 else 0);
               if !rem > 0 then decr rem;
               pulls.(i) <- 1
             end)
          active
      end;
      (alloc, pulls)
  in
  let overflow = ref 0 in
  Array.iteri
    (fun i a ->
       if a > 0 then begin
         let cap = max 0 remaining.(i) in
         if a > cap then begin
           overflow := !overflow + (a - cap);
           alloc.(i) <- cap
         end
       end)
    (Array.copy alloc);
  Array.iteri
    (fun i _ ->
       if !overflow > 0 && active.(i) then begin
         let spare = max 0 (remaining.(i) - alloc.(i)) in
         let take = min spare !overflow in
         alloc.(i) <- alloc.(i) + take;
         overflow := !overflow - take
       end)
    alloc;
  (alloc, pulls)

(* Persist one campaign's current state as a fresh store generation. *)
let save_state st =
  let fz = st.cs_fuzzer in
  let h = fz.Fuzz.Driver.f_harness in
  (match fz.Fuzz.Driver.f_exchange with
   | Some port -> Store.acc_add_export st.cs_acc (port.Fuzz.Sync.p_export ())
   | None -> ());
  let tri = Fuzz.Harness.triage h in
  let snapshot =
    Store.acc_snapshot st.cs_acc ~campaign:st.cs_campaign
      ~progress:{ Store.pr_execs_done = execs_done st; pr_epoch = st.cs_epoch }
      ~virgin:(Coverage.Bitmap.compact (Fuzz.Harness.virgin h))
      ~grammar:
        (match Fuzz.Harness.grammar_virgin h with
         | Some g -> Coverage.Bitmap.compact g
         | None -> Lazy.force empty_compact)
      ~crash_keys:(Fuzz.Triage.crash_keys tri)
      ~logic_keys:(Fuzz.Triage.logic_keys tri)
  in
  st.cs_generation <- Store.save ~dir:st.cs_dir snapshot

(* Build one campaign's state: fresh, or preloaded from an existing
   store (spec config authoritative, learned state from disk). *)
let init_campaign ~runs_dir warnings (c : Store.campaign) =
  let dir = Store.store_dir ?runs_dir c.sc_id in
  let prior, epoch, resumed_from, preload =
    if Store.generations ~dir = [] then (0, 0, None, None)
    else
      match Store.load ~dir with
      | Ok (sn, gen, warns) ->
        List.iter (fun w -> warnings := (c.sc_id ^ ": " ^ w) :: !warnings) warns;
        ( sn.Store.sn_progress.pr_execs_done,
          sn.Store.sn_progress.pr_epoch + 1, Some gen, Some sn )
      | Error warns ->
        List.iter (fun w -> warnings := (c.sc_id ^ ": " ^ w) :: !warnings) warns;
        warnings :=
          (Printf.sprintf "%s: no valid store generation, starting fresh"
             c.sc_id)
          :: !warnings;
        (0, 0, None, None)
  in
  match Spec.make ~campaign:c ~seed:(Spec.epoch_seed ~campaign:c ~epoch) with
  | Error e -> Error e
  | Ok base ->
    let fz = base 0 in
    Option.iter (fun sn -> Resume.preload_fuzzer sn fz) preload;
    let acc =
      match preload with
      | Some sn -> Store.acc_of_snapshot sn
      | None -> Store.acc_create ()
    in
    let keys = coverage_keys fz in
    Ok
      { cs_campaign = c; cs_dir = dir; cs_fuzzer = fz; cs_acc = acc;
        cs_prior_execs = prior; cs_epoch = epoch;
        cs_resumed_from = resumed_from; cs_keys = keys; cs_start_keys = keys;
        cs_rounds = 0; cs_allocated = 0; cs_generation = 0; cs_error = None }

(* Run one campaign's round slice on the calling domain. Exceptions
   (Stalled, engine faults) retire the arm instead of killing the
   farm. *)
let run_slice st ~execs =
  let h = st.cs_fuzzer.Fuzz.Driver.f_harness in
  let target = Fuzz.Harness.execs h + execs in
  try ignore (Fuzz.Driver.run_until_execs st.cs_fuzzer ~execs:target)
  with
  | Fuzz.Driver.Stalled msg -> st.cs_error <- Some ("stalled: " ^ msg)
  | exn -> st.cs_error <- Some (Printexc.to_string exn)

let checkpoint_event ~round st =
  let h = st.cs_fuzzer.Fuzz.Driver.f_harness in
  let tri = Fuzz.Harness.triage h in
  Telemetry.Event.Checkpoint
    { point =
        { Telemetry.Event.p_series = "farm/" ^ st.cs_campaign.sc_id;
          p_iteration = round; p_execs = execs_done st;
          p_branches = st.cs_keys;
          p_crashes_total = Fuzz.Triage.total_crashes tri;
          p_crashes_unique = Fuzz.Triage.unique_count tri;
          p_bugs = Fuzz.Triage.bug_ids tri };
      wall_s = None; execs_per_sec = None }

let run ?(sink = Telemetry.Sink.null) ?runs_dir (spec : Spec.t) =
  let warnings = ref [] in
  let states_r =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | c :: rest -> (
          match init_campaign ~runs_dir warnings c with
          | Error e -> Error e
          | Ok st -> go (st :: acc) rest)
    in
    go [] spec.fs_campaigns
  in
  match states_r with
  | Error e -> Error e
  | Ok states_l ->
    let states = Array.of_list states_l in
    let n = Array.length states in
    let metrics = Telemetry.Registry.create () in
    let rounds_ctr = Telemetry.Registry.counter metrics "farm.rounds" in
    let alloc_ctr = Telemetry.Registry.counter metrics "farm.allocated" in
    let per_ctr st which =
      Telemetry.Registry.counter metrics
        (Printf.sprintf "farm.%s.%s" st.cs_campaign.sc_id which)
    in
    Array.iter
      (fun st ->
         ignore (per_ctr st "rounds");
         ignore (per_ctr st "allocated");
         ignore (per_ctr st "new_keys"))
      states;
    Telemetry.Sink.emit sink
      (Telemetry.Event.Meta
         [ ("command", Telemetry.Json.Str "farm");
           ("campaigns", Telemetry.Json.Int n);
           ("total_execs", Telemetry.Json.Int spec.fs_total_execs);
           ("round_execs", Telemetry.Json.Int spec.fs_round_execs);
           ("workers", Telemetry.Json.Int spec.fs_workers);
           ("policy", Telemetry.Json.Str (Spec.policy_to_string spec.fs_policy))
         ]);
    let bandit = Bandit.create ~c:spec.fs_ucb_c ~arms:n () in
    let dealt_total = ref 0 and round = ref 0 in
    let progressed = ref true in
    let continue_ () =
      !progressed
      && !dealt_total < spec.fs_total_execs
      && Array.exists alive states
    in
    while continue_ () do
      incr round;
      let active = Array.map alive states in
      let round_budget =
        min spec.fs_round_execs (spec.fs_total_execs - !dealt_total)
      in
      let alloc, pulls =
        deal_round ~policy:spec.fs_policy ~bandit ~round_budget ~active
          ~remaining:(Array.map remaining states)
      in
      let jobs =
        Array.to_list (Array.mapi (fun i a -> (i, a)) alloc)
        |> List.filter (fun (_, a) -> a > 0)
        |> Array.of_list
      in
      if Array.length jobs = 0 then
        (* Nothing allocatable (every active arm is out of budget, or the
           whole round's deal overflowed): stop instead of spinning. *)
        progressed := false
      else begin
        progressed := true;
        let keys_before = Array.map (fun st -> st.cs_keys) states in
        let next = Atomic.make 0 in
        let worker () =
          let rec loop () =
            let k = Atomic.fetch_and_add next 1 in
            if k < Array.length jobs then begin
              let i, a = jobs.(k) in
              run_slice states.(i) ~execs:a;
              loop ()
            end
          in
          loop ()
        in
        let pool = min spec.fs_workers (Array.length jobs) in
        if pool <= 1 then worker ()
        else begin
          let domains =
            Array.init (pool - 1) (fun _ -> Domain.spawn worker)
          in
          worker ();
          Array.iter Domain.join domains
        end;
        (* Join done: observe, reward, persist, report — main thread. *)
        Array.iter
          (fun (i, a) ->
             let st = states.(i) in
             st.cs_keys <- coverage_keys st.cs_fuzzer;
             let delta = st.cs_keys - keys_before.(i) in
             st.cs_rounds <- st.cs_rounds + 1;
             st.cs_allocated <- st.cs_allocated + a;
             dealt_total := !dealt_total + a;
             (match spec.fs_policy with
              | Spec.Bandit ->
                Bandit.update bandit ~arm:i ~pulls:pulls.(i)
                  ~reward:(float_of_int delta /. float_of_int (max 1 a))
              | Spec.Round_robin -> ());
             Telemetry.Registry.incr (per_ctr st "rounds");
             Telemetry.Registry.incr ~by:a (per_ctr st "allocated");
             Telemetry.Registry.incr ~by:(max 0 delta) (per_ctr st "new_keys");
             save_state st;
             Telemetry.Sink.emit sink (checkpoint_event ~round:!round st))
          jobs;
        Telemetry.Registry.incr rounds_ctr;
        Telemetry.Registry.incr
          ~by:(Array.fold_left (fun acc (_, a) -> acc + a) 0 jobs)
          alloc_ctr
      end
    done;
    (* Campaigns that never got a round still deserve a generation (the
       initial corpus is real learned state), and every campaign's
       harness metrics fold into the farm registry. *)
    Array.iter
      (fun st ->
         if st.cs_generation = 0 then save_state st;
         Telemetry.Registry.merge ~into:metrics
           (Telemetry.Registry.snapshot
              (Fuzz.Harness.metrics st.cs_fuzzer.Fuzz.Driver.f_harness)))
      states;
    Telemetry.Sink.emit sink
      (Telemetry.Event.Registry_dump { series = "farm"; registry = metrics });
    let campaigns =
      Array.to_list
        (Array.map
           (fun st ->
              let h = st.cs_fuzzer.Fuzz.Driver.f_harness in
              let tri = Fuzz.Harness.triage h in
              { fc_campaign = st.cs_campaign; fc_rounds = st.cs_rounds;
                fc_allocated = st.cs_allocated;
                fc_executed = Fuzz.Harness.execs h;
                fc_execs_done = execs_done st;
                fc_branches = Fuzz.Harness.branches h;
                fc_coverage_keys = st.cs_keys;
                fc_new_keys = st.cs_keys - st.cs_start_keys;
                fc_crashes_unique = Fuzz.Triage.unique_count tri;
                fc_logic_unique = Fuzz.Triage.logic_count tri;
                fc_bugs = Fuzz.Triage.bug_ids tri;
                fc_generation = st.cs_generation;
                fc_resumed_from = st.cs_resumed_from;
                fc_finished = finished st; fc_error = st.cs_error })
           states)
    in
    Ok
      { fr_campaigns = campaigns;
        fr_rounds = Telemetry.Registry.counter_value metrics "farm.rounds";
        fr_allocated = !dealt_total; fr_metrics = metrics;
        fr_warnings = List.rev !warnings }

(* ===================================================================== *)
(* Process backend (DESIGN.md §17): the same round loop, but slices run
   in spawned worker processes speaking the Transport line protocol.
   The coordinator never builds a fuzzer — campaign state lives in the
   stores; workers persist rounds into their generation namespaces and
   the coordinator promotes them under the store lock. A worker that
   dies, wedges (missed heartbeats) or talks garbage is quarantined:
   killed, its in-flight round re-queued, the slot respawned until its
   restart budget runs out — never a farm abort. *)

type pstate = {
  p_campaign : Store.campaign;
  p_dir : string;
  mutable p_execs_done : int;
  mutable p_keys : int;
  mutable p_new_keys : int;
  mutable p_branches : int;
  mutable p_rounds : int;
  mutable p_allocated : int;
  mutable p_executed : int;
  (* Unique-finding counts come back per worker epoch segment (preloaded
     keys excluded); a reload starts a new segment, so farm totals are
     base (closed segments) + the live segment's latest count. *)
  mutable p_crash_base : int;
  mutable p_seg_crashes : int;
  mutable p_logic_base : int;
  mutable p_seg_logic : int;
  mutable p_bugs : string list;
  mutable p_generation : int;
  p_resumed_from : int option;
  mutable p_error : string option;
}

let p_remaining p = p.p_campaign.Store.sc_budget - p.p_execs_done
let p_finished p = p_remaining p <= 0
let p_alive p = p.p_error = None && not (p_finished p)

(* Coordinator-side campaign init: make sure the store has a loadable
   generation carrying the spec's (authoritative) config, but build no
   fuzzer — workers do that from the store. *)
let init_process_campaign ~runs_dir warnings (c : Store.campaign) =
  let dir = Store.store_dir ?runs_dir c.sc_id in
  let warn w = warnings := (c.sc_id ^ ": " ^ w) :: !warnings in
  let execs_done, generation, resumed_from =
    if Store.generations ~dir = [] then
      (0, Store.save ~dir (Store.empty_snapshot c), None)
    else
      match Store.load ~dir with
      | Ok (sn, gen, warns) ->
        List.iter warn warns;
        let gen' =
          if sn.Store.sn_campaign <> c then
            Store.save ~dir { sn with Store.sn_campaign = c }
          else gen
        in
        (sn.Store.sn_progress.pr_execs_done, gen', Some gen)
      | Error warns ->
        List.iter warn warns;
        warn "no valid store generation, starting fresh";
        (0, Store.save ~dir (Store.empty_snapshot c), None)
  in
  { p_campaign = c; p_dir = dir; p_execs_done = execs_done; p_keys = 0;
    p_new_keys = 0; p_branches = 0; p_rounds = 0; p_allocated = 0;
    p_executed = 0; p_crash_base = 0; p_seg_crashes = 0; p_logic_base = 0;
    p_seg_logic = 0; p_bugs = []; p_generation = generation;
    p_resumed_from = resumed_from; p_error = None }

type wslot = {
  w_id : int;
  w_buf : Buffer.t;
  mutable w_pid : int;
  mutable w_stdin : out_channel option;
  mutable w_fd : Unix.file_descr option;
  mutable w_last : float;  (* last protocol activity *)
  mutable w_job : (int * int) option;  (* (campaign index, execs) *)
  mutable w_affinity : string;  (* last campaign id served *)
  mutable w_restarts : int;
  mutable w_spawns : int;
  mutable w_live : bool;
  mutable w_retired : bool;
}

let default_worker_cmd ?runs_dir () k =
  let base =
    [ Sys.executable_name; "worker"; "--worker-id"; string_of_int k ]
  in
  let rd =
    match runs_dir with Some d -> [ "--runs-dir"; d ] | None -> []
  in
  Array.of_list (base @ rd)

let run_processes ?(sink = Telemetry.Sink.null) ?runs_dir ?worker_cmd
    ?(heartbeat_timeout = 30.) ?(max_restarts = 3)
    ?(on_heartbeat = fun ~worker:_ ~pid:_ -> ()) ~workers (spec : Spec.t) =
  let worker_cmd =
    match worker_cmd with
    | Some f -> f
    | None -> default_worker_cmd ?runs_dir ()
  in
  let warnings = ref [] in
  let warn w = warnings := w :: !warnings in
  let setup_error = ref None in
  List.iter
    (fun (c : Store.campaign) ->
       if !setup_error = None then
         match Spec.make ~campaign:c ~seed:c.sc_seed with
         | Error e -> setup_error := Some e
         | Ok _ -> ())
    spec.Spec.fs_campaigns;
  match !setup_error with
  | Some e -> Error e
  | None ->
    let states =
      Array.of_list
        (List.map (init_process_campaign ~runs_dir warnings)
           spec.Spec.fs_campaigns)
    in
    let n = Array.length states in
    let workers = max 1 workers in
    let metrics = Telemetry.Registry.create () in
    let rounds_ctr = Telemetry.Registry.counter metrics "farm.rounds" in
    let alloc_ctr = Telemetry.Registry.counter metrics "farm.allocated" in
    let per_ctr p which =
      Telemetry.Registry.counter metrics
        (Printf.sprintf "farm.%s.%s" p.p_campaign.Store.sc_id which)
    in
    let wk_ctr k which =
      Telemetry.Registry.counter metrics
        (Printf.sprintf "farm.worker.%d.%s" k which)
    in
    let store_ctr which =
      Telemetry.Registry.counter metrics ("farm.store." ^ which)
    in
    Array.iter
      (fun p ->
         ignore (per_ctr p "rounds");
         ignore (per_ctr p "allocated");
         ignore (per_ctr p "new_keys"))
      states;
    ignore (store_ctr "reloads");
    ignore (store_ctr "reload_skipped");
    Telemetry.Sink.emit sink
      (Telemetry.Event.Meta
         [ ("command", Telemetry.Json.Str "farm");
           ("backend", Telemetry.Json.Str "processes");
           ("campaigns", Telemetry.Json.Int n);
           ("total_execs", Telemetry.Json.Int spec.Spec.fs_total_execs);
           ("round_execs", Telemetry.Json.Int spec.Spec.fs_round_execs);
           ("workers", Telemetry.Json.Int workers);
           ("policy",
            Telemetry.Json.Str (Spec.policy_to_string spec.Spec.fs_policy)) ]);
    let bandit = Bandit.create ~c:spec.Spec.fs_ucb_c ~arms:n () in
    let now () = Unix.gettimeofday () in
    let slots =
      Array.init workers (fun k ->
          { w_id = k + 1; w_buf = Buffer.create 512; w_pid = 0;
            w_stdin = None; w_fd = None; w_last = 0.; w_job = None;
            w_affinity = ""; w_restarts = 0; w_spawns = 0; w_live = false;
            w_retired = false })
    in
    ignore (Array.iter (fun w -> ignore (wk_ctr w.w_id "rounds")) slots);
    let spawn_slot w =
      let stdin_r, stdin_w = Unix.pipe () in
      let stdout_r, stdout_w = Unix.pipe () in
      Unix.set_close_on_exec stdin_w;
      Unix.set_close_on_exec stdout_r;
      let argv = worker_cmd w.w_id in
      let pid =
        try Some (Unix.create_process argv.(0) argv stdin_r stdout_w Unix.stderr)
        with Unix.Unix_error _ | Invalid_argument _ -> None
      in
      Unix.close stdin_r;
      Unix.close stdout_w;
      match pid with
      | None ->
        Unix.close stdin_w;
        Unix.close stdout_r;
        w.w_live <- false;
        w.w_retired <- true;
        warn
          (Printf.sprintf "worker %d: cannot spawn %s" w.w_id
             (if Array.length argv > 0 then argv.(0) else "<empty argv>"))
      | Some pid ->
        w.w_pid <- pid;
        w.w_stdin <- Some (Unix.out_channel_of_descr stdin_w);
        w.w_fd <- Some stdout_r;
        Buffer.clear w.w_buf;
        w.w_last <- now ();
        w.w_job <- None;
        w.w_live <- true;
        w.w_spawns <- w.w_spawns + 1
    in
    let close_ends w =
      (match w.w_stdin with
       | Some oc -> (try close_out oc with Sys_error _ -> ())
       | None -> ());
      (match w.w_fd with
       | Some fd -> (try Unix.close fd with Unix.Unix_error _ -> ())
       | None -> ());
      w.w_stdin <- None;
      w.w_fd <- None
    in
    let kill_slot ?(already_dead = false) w =
      close_ends w;
      if w.w_live && not already_dead && w.w_pid > 0 then begin
        (try Unix.kill w.w_pid Sys.sigkill with Unix.Unix_error _ -> ());
        (try ignore (Unix.waitpid [] w.w_pid) with Unix.Unix_error _ -> ())
      end;
      w.w_live <- false
    in
    let pending = ref [] in
    let outstanding = ref 0 in
    let round = ref 0 in
    let current_pulls = ref [||] in
    let dealt_total = ref 0 in
    let round_completed = ref 0 in
    let round_dealt = ref 0 in
    let fail_slot ?(already_dead = false) w reason =
      (match w.w_job with
       | Some (i, _) ->
         Store.discard_worker_generations ~dir:states.(i).p_dir
           ~worker:w.w_id
       | None -> ());
      (match w.w_job with
       | Some job ->
         pending := !pending @ [ job ];
         w.w_job <- None
       | None -> ());
      w.w_restarts <- w.w_restarts + 1;
      Telemetry.Registry.incr (wk_ctr w.w_id "restarts");
      let retire = w.w_restarts > max_restarts in
      warn
        (Printf.sprintf "worker %d %s; %s" w.w_id reason
           (if retire then "retiring slot" else "restarting"));
      kill_slot ~already_dead w;
      if retire then w.w_retired <- true else spawn_slot w
    in
    let send w ((i, a) as job) =
      match w.w_stdin with
      | None -> false
      | Some oc -> (
          let id = states.(i).p_campaign.Store.sc_id in
          try
            output_string oc
              (Transport.command_to_line
                 (Transport.Run
                    { rc_campaign = id; rc_execs = a; rc_round = !round }));
            output_char oc '\n';
            flush oc;
            w.w_job <- Some job;
            w.w_last <- now ();
            w.w_affinity <- id;
            true
          with Sys_error _ ->
            fail_slot w "stdin write failed";
            false)
    in
    (* Dispatch prefers a job for the campaign the slot served last —
       that's what makes the worker's reload short-circuit hit. *)
    let pick w =
      let rec go acc = function
        | [] -> (
            match List.rev acc with
            | [] -> None
            | j :: rest -> Some (j, rest))
        | ((i, _) as j) :: rest
          when states.(i).p_campaign.Store.sc_id = w.w_affinity ->
          Some (j, List.rev_append acc rest)
        | j :: rest -> go (j :: acc) rest
      in
      go [] !pending
    in
    let dispatch () =
      Array.iter
        (fun w ->
           if w.w_live && not w.w_retired && w.w_job = None && !pending <> []
           then
             match pick w with
             | None -> ()
             | Some (job, rest) ->
               pending := rest;
               if not (send w job) then pending := job :: !pending)
        slots
    in
    let checkpoint p (r : Transport.round_report) =
      let crashes = p.p_crash_base + p.p_seg_crashes in
      Telemetry.Sink.emit sink
        (Telemetry.Event.Checkpoint
           { point =
               { Telemetry.Event.p_series =
                   "farm/" ^ p.p_campaign.Store.sc_id;
                 p_iteration = r.rr_round; p_execs = p.p_execs_done;
                 p_branches = p.p_keys; p_crashes_total = crashes;
                 p_crashes_unique = crashes; p_bugs = p.p_bugs };
             wall_s = None; execs_per_sec = None })
    in
    let handle_round w (r : Transport.round_report) =
      match w.w_job with
      | None -> w.w_last <- now ()
      | Some (i, a) ->
        w.w_job <- None;
        w.w_last <- now ();
        let p = states.(i) in
        (if r.rr_generation > 0 then
           match
             Store.promote ~dir:p.p_dir ~worker:w.w_id r.rr_generation
           with
           | Ok g -> p.p_generation <- g
           | Error e ->
             warn
               (Printf.sprintf "%s: promote of gen %d.w%d failed: %s"
                  p.p_campaign.Store.sc_id r.rr_generation w.w_id e));
        p.p_rounds <- p.p_rounds + 1;
        p.p_allocated <- p.p_allocated + a;
        p.p_executed <- p.p_executed + r.rr_executed;
        p.p_execs_done <- r.rr_execs_done;
        p.p_keys <- r.rr_coverage_keys;
        p.p_branches <- r.rr_branches;
        let delta = max 0 r.rr_new_keys in
        p.p_new_keys <- p.p_new_keys + delta;
        if r.rr_reloads > 0 then begin
          p.p_crash_base <- p.p_crash_base + p.p_seg_crashes;
          p.p_logic_base <- p.p_logic_base + p.p_seg_logic
        end;
        p.p_seg_crashes <- r.rr_crashes_unique;
        p.p_seg_logic <- r.rr_logic_unique;
        p.p_bugs <-
          List.sort_uniq compare (p.p_bugs @ r.rr_bugs);
        p.p_error <- r.rr_error;
        dealt_total := !dealt_total + a;
        round_dealt := !round_dealt + a;
        incr round_completed;
        (match spec.Spec.fs_policy with
         | Spec.Bandit ->
           let pulls =
             if i < Array.length !current_pulls then !current_pulls.(i)
             else 1
           in
           Bandit.update bandit ~arm:i ~pulls
             ~reward:(float_of_int delta /. float_of_int (max 1 a))
         | Spec.Round_robin -> ());
        Telemetry.Registry.incr (per_ctr p "rounds");
        Telemetry.Registry.incr ~by:a (per_ctr p "allocated");
        Telemetry.Registry.incr ~by:delta (per_ctr p "new_keys");
        Telemetry.Registry.incr (wk_ctr w.w_id "rounds");
        Telemetry.Registry.incr ~by:r.rr_executed (wk_ctr w.w_id "execs");
        Telemetry.Registry.incr ~by:r.rr_reloads (store_ctr "reloads");
        Telemetry.Registry.incr ~by:r.rr_reload_skipped
          (store_ctr "reload_skipped");
        checkpoint p r;
        decr outstanding
    in
    let handle_line w line =
      match Transport.message_of_line line with
      | Error e ->
        fail_slot w
          (Printf.sprintf "sent a malformed control line (%s)" e)
      | Ok (Transport.Hello _) -> w.w_last <- now ()
      | Ok (Transport.Heartbeat _) ->
        w.w_last <- now ();
        on_heartbeat ~worker:w.w_id ~pid:w.w_pid
      | Ok (Transport.Fatal e) -> fail_slot w ("reported fatal: " ^ e)
      | Ok (Transport.Round r) -> handle_round w r
    in
    let drain_lines w =
      let spawns = w.w_spawns in
      let continue_drain = ref true in
      while !continue_drain && w.w_spawns = spawns do
        let s = Buffer.contents w.w_buf in
        match String.index_opt s '\n' with
        | None -> continue_drain := false
        | Some i ->
          let line = String.sub s 0 i in
          Buffer.clear w.w_buf;
          Buffer.add_substring w.w_buf s (i + 1) (String.length s - i - 1);
          handle_line w line
      done
    in
    let scratch = Bytes.create 8192 in
    let read_slot w fd =
      match Unix.read fd scratch 0 (Bytes.length scratch) with
      | 0 -> fail_slot w "closed its stdout"
      | len ->
        Buffer.add_subbytes w.w_buf scratch 0 len;
        drain_lines w
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EINTR), _, _) -> ()
      | exception Unix.Unix_error _ -> fail_slot w "stdout read failed"
    in
    let pump timeout =
      let live =
        Array.to_list slots
        |> List.filter_map (fun w ->
            if w.w_live then
              match w.w_fd with
              | Some fd -> Some (w, fd, w.w_spawns)
              | None -> None
            else None)
      in
      let readable =
        match live with
        | [] ->
          (* Nothing to select on; don't busy-spin while respawns or
             retirements settle. *)
          Unix.sleepf (min timeout 0.02);
          []
        | _ -> (
            match Unix.select (List.map (fun (_, fd, _) -> fd) live) [] [] timeout with
            | r, _, _ -> r
            | exception Unix.Unix_error (Unix.EINTR, _, _) -> [])
      in
      List.iter
        (fun (w, fd, spawns) ->
           if List.memq fd readable && w.w_spawns = spawns && w.w_live then
             read_slot w fd)
        live;
      Array.iter
        (fun w ->
           if w.w_live then
             match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
             | 0, _ -> ()
             | _, _ -> fail_slot ~already_dead:true w "exited unexpectedly"
             | exception Unix.Unix_error (Unix.ECHILD, _, _) ->
               fail_slot ~already_dead:true w "exited unexpectedly")
        slots;
      Array.iter
        (fun w ->
           if w.w_live && w.w_job <> None
              && now () -. w.w_last > heartbeat_timeout
           then
             fail_slot w
               (Printf.sprintf "missed heartbeats for %.1fs"
                  (now () -. w.w_last)))
        slots
    in
    let usable () =
      Array.exists (fun w -> not w.w_retired) slots
    in
    let old_sigpipe = Sys.signal Sys.sigpipe Sys.Signal_ignore in
    Fun.protect
      ~finally:(fun () -> ignore (Sys.signal Sys.sigpipe old_sigpipe))
      (fun () ->
         Array.iter spawn_slot slots;
         let progressed = ref true in
         let continue_ () =
           !progressed
           && !dealt_total < spec.Spec.fs_total_execs
           && Array.exists p_alive states
           && usable ()
         in
         while continue_ () do
           incr round;
           let active = Array.map p_alive states in
           let round_budget =
             min spec.Spec.fs_round_execs
               (spec.Spec.fs_total_execs - !dealt_total)
           in
           let alloc, pulls =
             deal_round ~policy:spec.Spec.fs_policy ~bandit ~round_budget
               ~active ~remaining:(Array.map p_remaining states)
           in
           current_pulls := pulls;
           let jobs =
             Array.to_list (Array.mapi (fun i a -> (i, a)) alloc)
             |> List.filter (fun (_, a) -> a > 0)
           in
           if jobs = [] then progressed := false
           else begin
             progressed := true;
             pending := jobs;
             outstanding := List.length jobs;
             round_completed := 0;
             round_dealt := 0;
             while !outstanding > 0 && usable () do
               dispatch ();
               pump 0.1
             done;
             if !outstanding > 0 then begin
               warn
                 (Printf.sprintf
                    "farm: all worker slots exhausted with %d round jobs \
                     unserved"
                    !outstanding);
               pending := [];
               outstanding := 0;
               progressed := false
             end;
             if !round_completed > 0 then begin
               Telemetry.Registry.incr rounds_ctr;
               Telemetry.Registry.incr ~by:!round_dealt alloc_ctr
             end
           end
         done;
         (* Orderly shutdown: ask, wait briefly, then make sure. *)
         Array.iter
           (fun w ->
              if w.w_live then (
                match w.w_stdin with
                | Some oc -> (
                    try
                      output_string oc
                        (Transport.command_to_line Transport.Shutdown);
                      output_char oc '\n';
                      flush oc;
                      close_out oc;
                      w.w_stdin <- None
                    with Sys_error _ -> ())
                | None -> ()))
           slots;
         let deadline = now () +. 5.0 in
         Array.iter
           (fun w ->
              if w.w_live then begin
                let rec wait () =
                  match Unix.waitpid [ Unix.WNOHANG ] w.w_pid with
                  | 0, _ ->
                    if now () < deadline then begin
                      Unix.sleepf 0.02;
                      wait ()
                    end
                    else begin
                      (try Unix.kill w.w_pid Sys.sigkill
                       with Unix.Unix_error _ -> ());
                      (try ignore (Unix.waitpid [] w.w_pid)
                       with Unix.Unix_error _ -> ())
                    end
                  | _, _ -> ()
                  | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
                in
                wait ();
                close_ends w;
                w.w_live <- false
              end)
           slots);
    (* Namespace hygiene: no unpromoted worker generation survives the
       farm, whatever happened to its worker. *)
    Array.iter
      (fun p ->
         Array.iter
           (fun w ->
              Store.discard_worker_generations ~dir:p.p_dir ~worker:w.w_id)
           slots)
      states;
    Telemetry.Sink.emit sink
      (Telemetry.Event.Registry_dump { series = "farm"; registry = metrics });
    let fr_rounds = Telemetry.Registry.counter_value metrics "farm.rounds" in
    if fr_rounds = 0 && Array.for_all (fun w -> w.w_retired) slots then
      Error "farm: every worker slot failed before completing a round"
    else
      Ok
        { fr_campaigns =
            Array.to_list
              (Array.map
                 (fun p ->
                    { fc_campaign = p.p_campaign; fc_rounds = p.p_rounds;
                      fc_allocated = p.p_allocated;
                      fc_executed = p.p_executed;
                      fc_execs_done = p.p_execs_done;
                      fc_branches = p.p_branches;
                      fc_coverage_keys = p.p_keys;
                      fc_new_keys = p.p_new_keys;
                      fc_crashes_unique = p.p_crash_base + p.p_seg_crashes;
                      fc_logic_unique = p.p_logic_base + p.p_seg_logic;
                      fc_bugs = p.p_bugs; fc_generation = p.p_generation;
                      fc_resumed_from = p.p_resumed_from;
                      fc_finished = p_finished p; fc_error = p.p_error })
                 states);
          fr_rounds; fr_allocated = !dealt_total; fr_metrics = metrics;
          fr_warnings = List.rev !warnings }
