(** UCB1 budget allocation across farm campaigns (DESIGN.md §16).

    Each farm campaign is an arm; each scheduler round splits its
    execution budget into slices and deals every slice to the arm with
    the highest upper confidence bound. Rewards are new-coverage-keys
    per allocated execution (the scheduler's definition), normalised by
    the best observed mean so the exploration term keeps a stable scale
    as absolute yields decay over a campaign's life.

    The bandit is deliberately RNG-free: scores are pure functions of
    the committed pull counts and reward sums, ties break towards the
    lowest arm index, and {!allocate}'s within-call provisional pulls
    make repeated slices spread deterministically. Two bandits fed the
    same update sequence allocate identically — the farm's determinism
    story rests on this. *)

type t

val create : ?c:float -> arms:int -> unit -> t
(** [arms] ≥ 1 arms, exploration constant [c] (default 0.5; 0 = pure
    exploitation after each arm's first pull). *)

val arms : t -> int

val allocate :
  ?slices:int -> t -> budget:int -> active:bool array -> int array * int array
(** [allocate t ~budget ~active] deals [budget] executions to the active
    arms and returns [(execs, pulls)] per arm. The budget is cut into
    [slices] near-equal slices (default [max 4 (2 * active arms)],
    clamped to ≤ budget so no slice is empty); each slice goes to the
    active arm maximising [mean/best_mean + c * sqrt (2 ln N / n)], with
    never-pulled arms scoring +∞ (forced exploration) and ties breaking
    to the lowest index. Within the call each dealt slice provisionally
    increments the winner's pull count, so consecutive slices spread
    instead of piling onto one arm.

    Conservation: the returned [execs] sum to exactly [budget] whenever
    at least one arm is active (and to 0 otherwise). Nothing is
    committed — feed the outcome back with {!update}, passing the
    returned [pulls]. *)

val update : t -> arm:int -> pulls:int -> reward:float -> unit
(** Commit a round's outcome for one arm: [pulls] pull-count increments
    (the slices the arm was dealt) at mean reward [reward]. Arms that
    were allocated but died before reporting simply never update — mark
    them inactive instead. *)

val pulls : t -> int array
(** Committed pull counts per arm (copy). *)

val mean : t -> arm:int -> float
(** Committed mean reward of an arm; 0 before its first update. *)
