(* Advisory file locks for store coordination (DESIGN.md §17).

   POSIX record locks (Unix.lockf) have two sharp edges this module
   files down. First, locks are per-process: F_TEST reports a file as
   free when the *caller's own* process holds it, so a coordinator
   probing read-marks it might itself hold would never see them — we
   keep a process-local table of held paths and consult it before
   asking the kernel. Second, closing *any* descriptor of a locked file
   drops every lock the process holds on it — so probes never open a
   path the local table says we hold, and each held lock keeps its own
   descriptor open until release. *)

type kind = Shared | Exclusive

type t = { l_path : string; l_fd : Unix.file_descr; l_kind : kind }

(* path -> number of holds by this process. Mutex-guarded: workers are
   single-threaded, but the in-process farm runs on several domains. *)
let held : (string, int) Hashtbl.t = Hashtbl.create 16
let held_mu = Mutex.create ()

let note_acquire path =
  Mutex.lock held_mu;
  Hashtbl.replace held path
    (1 + Option.value ~default:0 (Hashtbl.find_opt held path));
  Mutex.unlock held_mu

let note_release path =
  Mutex.lock held_mu;
  (match Hashtbl.find_opt held path with
   | Some n when n > 1 -> Hashtbl.replace held path (n - 1)
   | _ -> Hashtbl.remove held path);
  Mutex.unlock held_mu

let held_locally path =
  Mutex.lock held_mu;
  let yes = Hashtbl.mem held path in
  Mutex.unlock held_mu;
  yes

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ()
  end

let open_lock path =
  mkdir_p (Filename.dirname path);
  Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644

let cmd_of ~block = function
  | Shared -> if block then Unix.F_RLOCK else Unix.F_TRLOCK
  | Exclusive -> if block then Unix.F_LOCK else Unix.F_TLOCK

let acquire ?(block = true) ~kind path =
  let fd = open_lock path in
  match Unix.lockf fd (cmd_of ~block kind) 0 with
  | () ->
    note_acquire path;
    Some { l_path = path; l_fd = fd; l_kind = kind }
  | exception Unix.Unix_error ((EACCES | EAGAIN), _, _) ->
    Unix.close fd;
    None

let release t =
  (* Closing the descriptor releases the lock; do the bookkeeping first
     so a concurrent probe never sees "free" before "not held". *)
  note_release t.l_path;
  (try Unix.lockf t.l_fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ());
  try Unix.close t.l_fd with Unix.Unix_error _ -> ()

let with_exclusive path f =
  match acquire ~kind:Exclusive path with
  | None -> assert false (* blocking acquire returns or raises *)
  | Some l ->
    Fun.protect ~finally:(fun () -> release l) f

let is_locked path =
  held_locally path
  || (Sys.file_exists path
      && (match Unix.openfile path [ Unix.O_RDWR ] 0o644 with
          | exception Unix.Unix_error _ -> false
          | fd ->
            let busy =
              match Unix.lockf fd Unix.F_TEST 0 with
              | () -> false
              | exception Unix.Unix_error ((EACCES | EAGAIN), _, _) -> true
              | exception Unix.Unix_error _ -> false
            in
            (try Unix.close fd with Unix.Unix_error _ -> ());
            busy))
