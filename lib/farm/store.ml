(* The versioned on-disk campaign store (DESIGN.md §16).

   Layout: <dir>/gen-NNNNNN/{meta.json, corpus.jsonl, affinities.txt,
   skeletons.jsonl, virgin.json, grammar.json, dedup.json, MANIFEST.json}.
   Every file is written to <name>.tmp and renamed into place; the
   manifest — schema tag, generation number, FNV-64 digest per section —
   goes last, so a generation without a valid manifest is by definition
   torn and the loader falls back to the previous one. *)

module Json = Telemetry.Json

type campaign = {
  sc_id : string;
  sc_fuzzer : string;
  sc_dialect : string;
  sc_quirks : string list;
  sc_feedback : Fuzz.Harness.feedback;
  sc_oracles : bool;
  sc_exec_cache : int;
  sc_seed : int;
  sc_budget : int;
}

type progress = { pr_execs_done : int; pr_epoch : int }

type snapshot = {
  sn_campaign : campaign;
  sn_progress : progress;
  sn_seeds : Fuzz.Sync.xseed list;
  sn_affinities : (Sqlcore.Stmt_type.t * Sqlcore.Stmt_type.t) list;
  sn_skeletons : Sqlcore.Ast.stmt list;
  sn_virgin : Coverage.Bitmap.compact;
  sn_grammar : Coverage.Bitmap.compact;
  sn_crash_keys : string list;
  sn_logic_keys : string list;
}

let schema = "legofuzz-store-v1"

let meta_file = "meta.json"
let corpus_file = "corpus.jsonl"
let affinities_file = "affinities.txt"
let skeletons_file = "skeletons.jsonl"
let virgin_file = "virgin.json"
let grammar_file = "grammar.json"
let dedup_file = "dedup.json"

let section_files =
  [ meta_file; corpus_file; affinities_file; skeletons_file; virgin_file;
    grammar_file; dedup_file ]

let manifest_file = "MANIFEST.json"

(* --- paths ----------------------------------------------------------- *)

let store_dir ?runs_dir id =
  let runs = match runs_dir with Some d -> d | None -> Telemetry.Sink.runs_dir () in
  Filename.concat (Filename.concat runs id) "store"

let generation_dir ~dir gen = Filename.concat dir (Printf.sprintf "gen-%06d" gen)

let generation_of_basename base =
  if String.length base = 10 && String.sub base 0 4 = "gen-" then
    int_of_string_opt (String.sub base 4 6)
  else None

let generations ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map generation_of_basename
    |> List.sort compare

(* Worker-namespace generations: gen-NNNNNN.wK, invisible to
   [generations] (and so to every plain load path) until the
   coordinator promotes them. *)

let worker_generation_dir ~dir ~worker gen =
  Filename.concat dir (Printf.sprintf "gen-%06d.w%d" gen worker)

let worker_generation_of_basename base =
  if
    String.length base >= 13
    && String.sub base 0 4 = "gen-"
    && String.sub base 10 2 = ".w"
  then
    match
      ( int_of_string_opt (String.sub base 4 6),
        int_of_string_opt (String.sub base 12 (String.length base - 12)) )
    with
    | Some g, Some w when w >= 0 -> Some (g, w)
    | _ -> None
  else None

let worker_generations ~dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then []
  else
    Sys.readdir dir |> Array.to_list
    |> List.filter_map worker_generation_of_basename
    |> List.sort compare

(* --- lock paths ------------------------------------------------------- *)

let store_lock_path ~dir = Filename.concat dir "LOCK"

let generation_lock_path ~dir gen =
  Filename.concat (Filename.concat dir "locks")
    (Printf.sprintf "gen-%06d.lck" gen)

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Sys.mkdir path 0o755 with Sys_error _ when Sys.file_exists path -> ()
  end

let ensure_dir = mkdir_p

let empty_snapshot campaign =
  { sn_campaign = campaign;
    sn_progress = { pr_execs_done = 0; pr_epoch = 0 }; sn_seeds = [];
    sn_affinities = []; sn_skeletons = [];
    sn_virgin = Coverage.Bitmap.compact_of_cells [];
    sn_grammar = Coverage.Bitmap.compact_of_cells []; sn_crash_keys = [];
    sn_logic_keys = [] }

(* --- digests --------------------------------------------------------- *)

let fnv64 s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
       h := Int64.logxor !h (Int64.of_int (Char.code c));
       h := Int64.mul !h 0x100000001b3L)
    s;
  Printf.sprintf "%016Lx" !h

(* --- rendering ------------------------------------------------------- *)

let hex64 v = Printf.sprintf "%016Lx" v

let parse_hex64 s =
  if String.length s = 16 then
    try Some (Int64.of_string ("0x" ^ s)) with Failure _ -> None
  else None

let render_meta sn =
  let c = sn.sn_campaign and p = sn.sn_progress in
  Json.to_string
    (Json.Obj
       [ ("id", Json.Str c.sc_id); ("fuzzer", Json.Str c.sc_fuzzer);
         ("dialect", Json.Str c.sc_dialect);
         ("quirks", Json.Arr (List.map (fun q -> Json.Str q) c.sc_quirks));
         ("feedback", Json.Str (Fuzz.Harness.feedback_to_string c.sc_feedback));
         ("oracles", Json.Bool c.sc_oracles);
         ("exec_cache", Json.Int c.sc_exec_cache);
         ("seed", Json.Int c.sc_seed); ("budget", Json.Int c.sc_budget);
         ("execs_done", Json.Int p.pr_execs_done);
         ("epoch", Json.Int p.pr_epoch) ])
  ^ "\n"

let render_corpus sn =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (xs : Fuzz.Sync.xseed) ->
       Buffer.add_string buf
         (Json.to_string
            (Json.Obj
               [ ("sql", Json.Str (Sqlcore.Sql_printer.testcase xs.xs_tc));
                 ("cov_hash", Json.Str (hex64 xs.xs_cov_hash));
                 ("new_branches", Json.Int xs.xs_new_branches);
                 ("cost", Json.Int xs.xs_cost) ]));
       Buffer.add_char buf '\n')
    sn.sn_seeds;
  Buffer.contents buf

let render_affinities sn =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (a, b) ->
       Buffer.add_string buf (Sqlcore.Stmt_type.name a);
       Buffer.add_string buf " -> ";
       Buffer.add_string buf (Sqlcore.Stmt_type.name b);
       Buffer.add_char buf '\n')
    sn.sn_affinities;
  Buffer.contents buf

let render_skeletons sn =
  let buf = Buffer.create 1024 in
  List.iter
    (fun st ->
       Buffer.add_string buf
         (Json.to_string
            (Json.Obj [ ("sql", Json.Str (Sqlcore.Sql_printer.stmt st)) ]));
       Buffer.add_char buf '\n')
    sn.sn_skeletons;
  Buffer.contents buf

let render_bitmap compact =
  Json.to_string
    (Json.Obj
       [ ( "cells",
           Json.Arr
             (List.map
                (fun (i, v) -> Json.Arr [ Json.Int i; Json.Int v ])
                (Coverage.Bitmap.compact_cells compact)) ) ])
  ^ "\n"

let render_dedup sn =
  Json.to_string
    (Json.Obj
       [ ("crashes", Json.Arr (List.map (fun k -> Json.Str k) sn.sn_crash_keys));
         ("logic", Json.Arr (List.map (fun k -> Json.Str k) sn.sn_logic_keys)) ])
  ^ "\n"

let render sn =
  [ (meta_file, render_meta sn); (corpus_file, render_corpus sn);
    (affinities_file, render_affinities sn);
    (skeletons_file, render_skeletons sn);
    (virgin_file, render_bitmap sn.sn_virgin);
    (grammar_file, render_bitmap sn.sn_grammar);
    (dedup_file, render_dedup sn) ]

let snapshot_equal a b = render a = render b

(* --- parsing --------------------------------------------------------- *)

let ( let* ) = Result.bind

let field name conv json =
  match Json.member name json with
  | None -> Error (Printf.sprintf "missing field %S" name)
  | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Printf.sprintf "bad field %S" name))

let str_list json =
  match json with
  | Json.Arr items ->
    let rec go acc = function
      | [] -> Some (List.rev acc)
      | Json.Str s :: rest -> go (s :: acc) rest
      | _ -> None
    in
    go [] items
  | _ -> None

let jsonl_lines content =
  String.split_on_char '\n' content
  |> List.filter (fun l -> String.trim l <> "")

let parse_meta content =
  let* json =
    Json.of_string (String.trim content)
    |> Result.map_error (fun e -> "meta: " ^ e)
  in
  let* id = field "id" Json.to_str json in
  let* fuzzer = field "fuzzer" Json.to_str json in
  let* dialect = field "dialect" Json.to_str json in
  let* quirks = field "quirks" str_list json in
  let* fb = field "feedback" Json.to_str json in
  let* feedback =
    match Fuzz.Harness.feedback_of_string fb with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "meta: unknown feedback %S" fb)
  in
  let* oracles =
    field "oracles" (function Json.Bool b -> Some b | _ -> None) json
  in
  let* exec_cache = field "exec_cache" Json.to_int json in
  let* seed = field "seed" Json.to_int json in
  let* budget = field "budget" Json.to_int json in
  let* execs_done = field "execs_done" Json.to_int json in
  let* epoch = field "epoch" Json.to_int json in
  Ok
    ( { sc_id = id; sc_fuzzer = fuzzer; sc_dialect = dialect;
        sc_quirks = quirks; sc_feedback = feedback; sc_oracles = oracles;
        sc_exec_cache = exec_cache; sc_seed = seed; sc_budget = budget },
      { pr_execs_done = execs_done; pr_epoch = epoch } )

let parse_corpus content =
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let ctx msg = Printf.sprintf "corpus line %d: %s" n msg in
      let* json = Json.of_string line |> Result.map_error ctx in
      let* sql = field "sql" Json.to_str json |> Result.map_error ctx in
      let* hash_s = field "cov_hash" Json.to_str json |> Result.map_error ctx in
      let* cov_hash =
        match parse_hex64 hash_s with
        | Some h -> Ok h
        | None -> Error (ctx "bad cov_hash")
      in
      let* new_branches =
        field "new_branches" Json.to_int json |> Result.map_error ctx
      in
      let* cost = field "cost" Json.to_int json |> Result.map_error ctx in
      let* tc = Sqlparser.Parser.parse_testcase sql |> Result.map_error ctx in
      go
        ({ Fuzz.Sync.xs_tc = tc; xs_cov_hash = cov_hash;
           xs_new_branches = new_branches; xs_cost = cost }
         :: acc)
        (n + 1) rest
  in
  go [] 1 (jsonl_lines content)

let parse_affinities content =
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match
          String.split_on_char '>' line |> function
          | [ left; right ] when String.length left > 0
                                 && left.[String.length left - 1] = '-' ->
            let left = String.trim (String.sub left 0 (String.length left - 1))
            and right = String.trim right in
            (match
               (Sqlcore.Stmt_type.of_name left, Sqlcore.Stmt_type.of_name right)
             with
             | Some a, Some b -> Some (a, b)
             | _ -> None)
          | _ -> None
        with
        | Some pair -> go (pair :: acc) (n + 1) rest
        | None -> Error (Printf.sprintf "affinities line %d: unparseable" n))
  in
  go [] 1 (jsonl_lines content)

let parse_skeletons content =
  let rec go acc n = function
    | [] -> Ok (List.rev acc)
    | line :: rest ->
      let ctx msg = Printf.sprintf "skeletons line %d: %s" n msg in
      let* json = Json.of_string line |> Result.map_error ctx in
      let* sql = field "sql" Json.to_str json |> Result.map_error ctx in
      let* st = Sqlparser.Parser.parse_stmt sql |> Result.map_error ctx in
      go (st :: acc) (n + 1) rest
  in
  go [] 1 (jsonl_lines content)

let parse_bitmap ~name content =
  let* json =
    Json.of_string (String.trim content)
    |> Result.map_error (fun e -> name ^ ": " ^ e)
  in
  let* cells =
    field "cells"
      (fun v ->
         match v with
         | Json.Arr items ->
           let rec go acc = function
             | [] -> Some (List.rev acc)
             | Json.Arr [ Json.Int i; Json.Int value ] :: rest ->
               go ((i, value) :: acc) rest
             | _ -> None
           in
           go [] items
         | _ -> None)
      json
    |> Result.map_error (fun e -> name ^ ": " ^ e)
  in
  Ok (Coverage.Bitmap.compact_of_cells cells)

let parse_dedup content =
  let* json =
    Json.of_string (String.trim content)
    |> Result.map_error (fun e -> "dedup: " ^ e)
  in
  let* crashes =
    field "crashes" str_list json |> Result.map_error (fun e -> "dedup: " ^ e)
  in
  let* logic =
    field "logic" str_list json |> Result.map_error (fun e -> "dedup: " ^ e)
  in
  Ok (crashes, logic)

(* --- save ------------------------------------------------------------ *)

let write_atomic gdir name content =
  let tmp = Filename.concat gdir (name ^ ".tmp") in
  Out_channel.with_open_bin tmp (fun oc -> Out_channel.output_string oc content);
  Sys.rename tmp (Filename.concat gdir name)

let rec remove_tree path =
  if Sys.is_directory path then begin
    Array.iter
      (fun entry -> remove_tree (Filename.concat path entry))
      (Sys.readdir path);
    Sys.rmdir path
  end
  else Sys.remove path

(* Keep the newest [keep] generations — but never one another live
   process still holds a read-mark on: a worker parsing gen G while the
   coordinator races three saves ahead must not have the files yanked
   from under it. A SIGKILLed reader's marks vanish with its process
   (POSIX locks die with the holder), so a crash can only ever delay
   pruning by one pass, never wedge it. *)
let prune ~keep ~dir =
  let keep = max 1 keep in
  let gens = List.rev (generations ~dir) in
  List.iteri
    (fun i g ->
       if i >= keep && not (Lock.is_locked (generation_lock_path ~dir g))
       then begin
         (try remove_tree (generation_dir ~dir g) with Sys_error _ -> ());
         try Sys.remove (generation_lock_path ~dir g) with Sys_error _ -> ()
       end)
    gens

(* Next generation number: one past the newest, counting unpromoted
   worker generations too, so a worker's fresh write never collides
   with a plain generation (or another worker's) racing it. *)
let next_generation ~dir =
  let ws = List.map fst (worker_generations ~dir) in
  1 + List.fold_left max 0 (generations ~dir @ ws)

let save ?(keep = 3) ?worker ~dir sn =
  mkdir_p dir;
  let gen = next_generation ~dir in
  let gdir =
    match worker with
    | None -> generation_dir ~dir gen
    | Some w -> worker_generation_dir ~dir ~worker:w gen
  in
  mkdir_p gdir;
  let digests =
    List.map
      (fun (name, content) ->
         write_atomic gdir name content;
         (name, Json.Str (fnv64 content)))
      (render sn)
  in
  let manifest =
    Json.to_string
      (Json.Obj
         [ ("schema", Json.Str schema); ("generation", Json.Int gen);
           ("files", Json.Obj digests) ])
    ^ "\n"
  in
  write_atomic gdir manifest_file manifest;
  (* Workers never prune: only the coordinator (or a single-process
     saver) retires old generations, and it does so lock-aware. *)
  (match worker with None -> prune ~keep ~dir | Some _ -> ());
  gen

(* --- load ------------------------------------------------------------ *)

let read_file path =
  if Sys.file_exists path && not (Sys.is_directory path) then
    try Some (In_channel.with_open_bin path In_channel.input_all)
    with Sys_error _ -> None
  else None

let load_generation_at ~gdir gen =
  let* manifest_raw =
    match read_file (Filename.concat gdir manifest_file) with
    | Some c -> Ok c
    | None -> Error "missing manifest (torn write)"
  in
  let* manifest =
    Json.of_string (String.trim manifest_raw)
    |> Result.map_error (fun e -> "manifest: " ^ e)
  in
  let* () =
    match Json.member "schema" manifest with
    | Some (Json.Str s) when s = schema -> Ok ()
    | Some (Json.Str s) -> Error (Printf.sprintf "unknown schema %S" s)
    | _ -> Error "manifest: missing schema"
  in
  let* () =
    match Json.member "generation" manifest with
    | Some (Json.Int g) when g = gen -> Ok ()
    | Some (Json.Int g) ->
      Error (Printf.sprintf "manifest generation %d in gen-%06d" g gen)
    | _ -> Error "manifest: missing generation"
  in
  let* files =
    match Json.member "files" manifest with
    | Some (Json.Obj kvs) -> Ok kvs
    | _ -> Error "manifest: missing files"
  in
  let* sections =
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | name :: rest ->
        let* digest =
          match List.assoc_opt name files with
          | Some (Json.Str d) -> Ok d
          | _ -> Error (Printf.sprintf "manifest: no digest for %s" name)
        in
        let* content =
          match read_file (Filename.concat gdir name) with
          | Some c -> Ok c
          | None -> Error (Printf.sprintf "missing section %s" name)
        in
        if fnv64 content <> digest then
          Error (Printf.sprintf "digest mismatch in %s" name)
        else go ((name, content) :: acc) rest
    in
    go [] section_files
  in
  let get name = List.assoc name sections in
  let* campaign, progress = parse_meta (get meta_file) in
  let* seeds = parse_corpus (get corpus_file) in
  let* affinities = parse_affinities (get affinities_file) in
  let* skeletons = parse_skeletons (get skeletons_file) in
  let* virgin = parse_bitmap ~name:"virgin" (get virgin_file) in
  let* grammar = parse_bitmap ~name:"grammar" (get grammar_file) in
  let* crash_keys, logic_keys = parse_dedup (get dedup_file) in
  Ok
    { sn_campaign = campaign; sn_progress = progress; sn_seeds = seeds;
      sn_affinities = affinities; sn_skeletons = skeletons;
      sn_virgin = virgin; sn_grammar = grammar; sn_crash_keys = crash_keys;
      sn_logic_keys = logic_keys }

let load_generation ~dir gen =
  load_generation_at ~gdir:(generation_dir ~dir gen) gen

let load_general ~read_marks ~dir =
  match List.rev (generations ~dir) with
  | [] -> Error [ Printf.sprintf "no store generations under %s" dir ]
  | gens ->
    let attempt g =
      if read_marks then
        (* Hold a shared read-mark while parsing, so a lock-aware pruner
           in another process never deletes the generation mid-read. *)
        match Lock.acquire ~kind:Lock.Shared (generation_lock_path ~dir g) with
        | Some l ->
          Fun.protect
            ~finally:(fun () -> Lock.release l)
            (fun () -> load_generation ~dir g)
        | None -> load_generation ~dir g
      else load_generation ~dir g
    in
    let rec go warnings = function
      | [] -> Error (List.rev warnings)
      | g :: rest -> (
          match attempt g with
          | Ok snap -> Ok (snap, g, List.rev warnings)
          | Error msg ->
            go (Printf.sprintf "gen-%06d skipped: %s" g msg :: warnings) rest)
    in
    go [] gens

let load ~dir = load_general ~read_marks:false ~dir

let load_marked ~dir = load_general ~read_marks:true ~dir

(* --- manifest digest probe ------------------------------------------- *)

let manifest_digests gdir =
  match read_file (Filename.concat gdir manifest_file) with
  | None -> None
  | Some raw -> (
      match Json.of_string (String.trim raw) with
      | Error _ -> None
      | Ok m -> (
          match Json.member "files" m with
          | Some (Json.Obj kvs) ->
            let rec go acc = function
              | [] -> Some (List.rev acc)
              | name :: rest -> (
                  match List.assoc_opt name kvs with
                  | Some (Json.Str d) -> go ((name, d) :: acc) rest
                  | _ -> None)
            in
            go [] section_files
          | _ -> None))

(* --- discovery accumulation ------------------------------------------ *)

type acc = {
  mutable a_seeds : Fuzz.Sync.xseed list;  (* reverse discovery order *)
  mutable a_affinities : (Sqlcore.Stmt_type.t * Sqlcore.Stmt_type.t) list;
  mutable a_skeletons : Sqlcore.Ast.stmt list;
  seen_seeds : (int64, unit) Hashtbl.t;
  seen_affinities : (int * int, unit) Hashtbl.t;
  seen_skeletons : (string, unit) Hashtbl.t;
}

let acc_create () =
  { a_seeds = []; a_affinities = []; a_skeletons = [];
    seen_seeds = Hashtbl.create 64; seen_affinities = Hashtbl.create 64;
    seen_skeletons = Hashtbl.create 64 }

let acc_add_seed acc (xs : Fuzz.Sync.xseed) =
  if not (Hashtbl.mem acc.seen_seeds xs.xs_cov_hash) then begin
    Hashtbl.replace acc.seen_seeds xs.xs_cov_hash ();
    acc.a_seeds <- xs :: acc.a_seeds
  end

let acc_add_affinity acc (a, b) =
  let key = (Sqlcore.Stmt_type.to_index a, Sqlcore.Stmt_type.to_index b) in
  if not (Hashtbl.mem acc.seen_affinities key) then begin
    Hashtbl.replace acc.seen_affinities key ();
    acc.a_affinities <- (a, b) :: acc.a_affinities
  end

let acc_add_skeleton acc st =
  let key = Sqlcore.Sql_printer.stmt st in
  if not (Hashtbl.mem acc.seen_skeletons key) then begin
    Hashtbl.replace acc.seen_skeletons key ();
    acc.a_skeletons <- st :: acc.a_skeletons
  end

let acc_add_export acc (xp : Fuzz.Sync.export) =
  List.iter (acc_add_seed acc) xp.xp_seeds;
  List.iter (acc_add_affinity acc) xp.xp_affinities;
  List.iter (acc_add_skeleton acc) xp.xp_skeletons

let acc_of_snapshot sn =
  let acc = acc_create () in
  List.iter (acc_add_seed acc) sn.sn_seeds;
  List.iter (acc_add_affinity acc) sn.sn_affinities;
  List.iter (acc_add_skeleton acc) sn.sn_skeletons;
  acc

let acc_counts acc =
  ( List.length acc.a_seeds, List.length acc.a_affinities,
    List.length acc.a_skeletons )

let acc_snapshot acc ~campaign ~progress ~virgin ~grammar ~crash_keys
    ~logic_keys =
  { sn_campaign = campaign; sn_progress = progress;
    sn_seeds = List.rev acc.a_seeds;
    sn_affinities = List.rev acc.a_affinities;
    sn_skeletons = List.rev acc.a_skeletons; sn_virgin = virgin;
    sn_grammar = grammar; sn_crash_keys = crash_keys;
    sn_logic_keys = logic_keys }

(* --- snapshot merge & worker-generation promotion --------------------- *)

let bitmap_union x y =
  let m = Coverage.Bitmap.create () in
  Coverage.Bitmap.load_compact ~into:m x;
  let t = Coverage.Bitmap.create () in
  Coverage.Bitmap.load_compact ~into:t y;
  ignore (Coverage.Bitmap.merge ~into:m t);
  Coverage.Bitmap.compact m

(* a's keys first in their stored order, then b's unseen ones — the same
   extend-never-rewrite discipline resume uses, so preloaded dedup keys
   stay a prefix through any merge. *)
let union_keys xs ys =
  xs @ List.filter (fun k -> not (List.mem k xs)) ys

let merge_snapshots a b =
  let acc = acc_of_snapshot a in
  List.iter (acc_add_seed acc) b.sn_seeds;
  List.iter (acc_add_affinity acc) b.sn_affinities;
  List.iter (acc_add_skeleton acc) b.sn_skeletons;
  acc_snapshot acc ~campaign:a.sn_campaign
    ~progress:
      { pr_execs_done =
          max a.sn_progress.pr_execs_done b.sn_progress.pr_execs_done;
        pr_epoch = max a.sn_progress.pr_epoch b.sn_progress.pr_epoch }
    ~virgin:(bitmap_union a.sn_virgin b.sn_virgin)
    ~grammar:(bitmap_union a.sn_grammar b.sn_grammar)
    ~crash_keys:(union_keys a.sn_crash_keys b.sn_crash_keys)
    ~logic_keys:(union_keys a.sn_logic_keys b.sn_logic_keys)

let promote ?(keep = 3) ~dir ~worker gen =
  let src = worker_generation_dir ~dir ~worker gen in
  if not (Sys.file_exists src) then
    Error
      (Printf.sprintf "missing worker generation %s" (Filename.basename src))
  else
    Lock.with_exclusive (store_lock_path ~dir) (fun () ->
        let dst = generation_dir ~dir gen in
        let finish g =
          prune ~keep ~dir;
          Ok g
        in
        if not (Sys.file_exists dst) then begin
          (* The common case: the number the worker claimed is still
             free, so promotion is one rename — manifest, digests and
             generation number all carry over unchanged. *)
          Sys.rename src dst;
          finish gen
        end
        else
          match
            (load_generation_at ~gdir:dst gen, load_generation_at ~gdir:src gen)
          with
          | Ok a, Ok b ->
            let merged = merge_snapshots a b in
            (try remove_tree src with Sys_error _ -> ());
            finish (save ~keep ~dir merged)
          | Error _, Ok _ ->
            (* The plain twin is torn; the worker's copy is whole. *)
            (try remove_tree dst with Sys_error _ -> ());
            Sys.rename src dst;
            finish gen
          | _, Error e ->
            (try remove_tree src with Sys_error _ -> ());
            Error
              (Printf.sprintf "worker generation gen-%06d.w%d invalid: %s" gen
                 worker e))

let discard_worker_generations ~dir ~worker =
  List.iter
    (fun (g, w) ->
       if w = worker then
         try remove_tree (worker_generation_dir ~dir ~worker:w g)
         with Sys_error _ -> ())
    (worker_generations ~dir)
