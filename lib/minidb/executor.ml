open Sqlcore
open Sqlcore.Ast
open Storage

type result =
  | Rows of string list * Value.t array list
  | Affected of int
  | Done of string

(* ------------------------------------------------------------------ *)
(* Probe sites                                                         *)
(* ------------------------------------------------------------------ *)

let reg = Coverage.Sites.register
let s_exec = reg "exec.dispatch"
let s_scan = reg "exec.scan"
let s_access = reg "exec.access_path"
let s_join = reg "exec.join"
let s_where = reg "exec.where"
let s_group = reg "exec.group"
let s_having = reg "exec.having"
let s_window = reg "exec.window"
let s_sort = reg "exec.sort"
let s_distinct = reg "exec.distinct"
let s_limit = reg "exec.limit"
let s_setop = reg "exec.setop"
let s_proj = reg "exec.projection"
let s_insert = reg "exec.insert"
let s_constraint = reg "exec.constraint"
let s_update = reg "exec.update"
let s_delete = reg "exec.delete"
let s_trigger = reg "exec.trigger"
let s_rule = reg "exec.rule_rewrite"
let s_view = reg "exec.view_expand"
let s_cte = reg "exec.cte"
let s_ddl = reg "exec.ddl"
let s_txn = reg "exec.txn"
let s_dcl = reg "exec.dcl"
let s_util = reg "exec.util"
let s_copy = reg "exec.copy"
let s_notify = reg "exec.notify"
let s_handler = reg "exec.handler"
let s_prepare = reg "exec.prepare"
let s_err = reg "exec.error_path"
let s_seq = reg "exec.sequence"
let s_state = reg "exec.state_shape"
let s_explain = reg "exec.explain"
let s_show = reg "exec.show"
let s_values = reg "exec.values"

(* ------------------------------------------------------------------ *)
(* Context                                                             *)
(* ------------------------------------------------------------------ *)

type cte_rel = { cr_headers : string list; cr_rows : Value.t array list }

type plan_mode = Plan_auto | Plan_force_seq

type ctx = {
  cat : Catalog.t;
  profile : Profile.t;
  limits : Limits.t;
  cov : Coverage.Bitmap.t;
  flags : (string, unit) Hashtbl.t;  (* per-statement transient flags *)
  mutable query_depth : int;
  mutable trigger_depth : int;
  mutable shape_depth : int;  (* header/shape computation recursion *)
  mutable ctes : (string * cte_rel) list;
  mutable rows_scanned : int;  (* rows fetched from relations, telemetry *)
  mutable plan_mode : plan_mode;
      (* Plan_force_seq pins every base-table scan to Seq_scan — the
         differential-plan oracle's reference execution *)
}

let create_ctx ~cat ~profile ~limits ~cov =
  { cat; profile; limits; cov; flags = Hashtbl.create 8; query_depth = 0;
    trigger_depth = 0; shape_depth = 0; ctes = []; rows_scanned = 0;
    plan_mode = Plan_auto }

let set_plan_mode ctx mode = ctx.plan_mode <- mode

(* Everything a statement boundary can observe. [flags], [ctes] and the
   recursion depths are per-statement transients — [reset_transient]
   clears them before each statement, and they are empty/zero at every
   boundary — so only the catalog, the cumulative scan counter and the
   plan mode need to survive a snapshot. *)
type state = {
  st_cat : Catalog.t;
  st_rows_scanned : int;
  st_plan_mode : plan_mode;
  st_profile : Profile.t;
  st_limits : Limits.t;
}

let capture ctx =
  { st_cat = Catalog.deep_copy ctx.cat;
    st_rows_scanned = ctx.rows_scanned;
    st_plan_mode = ctx.plan_mode;
    st_profile = ctx.profile;
    st_limits = ctx.limits }

(* Copies the stored catalog again (O(#objects): rows are shared
   copy-on-write), so the [state] value stays pristine no matter how
   the restored context is mutated afterwards. *)
let restore st ~cov =
  { cat = Catalog.deep_copy st.st_cat;
    profile = st.st_profile;
    limits = st.st_limits;
    cov;
    flags = Hashtbl.create 8;
    query_depth = 0;
    trigger_depth = 0;
    shape_depth = 0;
    ctes = [];
    rows_scanned = st.st_rows_scanned;
    plan_mode = st.st_plan_mode }

let state_bytes st = Catalog.approx_bytes st.st_cat

let rows_scanned ctx = ctx.rows_scanned

let catalog ctx = ctx.cat

let probe ctx site key = Coverage.Bitmap.probe ctx.cov ~site ~key

let set_flag ctx name = Hashtbl.replace ctx.flags name ()

let flag ctx name = Hashtbl.mem ctx.flags name

let reset_transient ctx =
  Hashtbl.reset ctx.flags;
  ctx.ctes <- []

let vkind_of = function
  | Value.Null -> 0
  | Value.Int _ -> 1
  | Value.Float _ -> 2
  | Value.Text _ -> 3
  | Value.Bool _ -> 4

let row_sig row =
  (* type signature of up to the first three cells *)
  let n = Array.length row in
  let k i = if i < n then vkind_of row.(i) else 5 in
  (k 0 * 36) + (k 1 * 6) + k 2

let bucket n =
  if n = 0 then 0
  else if n = 1 then 1
  else if n <= 4 then 2
  else if n <= 16 then 3
  else if n <= 64 then 4
  else 5

(* A compact fingerprint of catalog shape, mixed into many probe keys so
   that the same statement in a differently-shaped database covers
   different cells. *)
let state_shape ctx =
  let c = ctx.cat in
  let bit b i = if b then 1 lsl i else 0 in
  bit (Hashtbl.length c.Catalog.triggers > 0) 0
  lor bit (Hashtbl.length c.Catalog.rules > 0) 1
  lor bit (Hashtbl.length c.Catalog.views > 0) 2
  lor bit (Hashtbl.length c.Catalog.indexes > 0) 3
  lor bit c.Catalog.in_txn 4
  lor bit (Hashtbl.length c.Catalog.locks > 0) 5

let analyzed ctx =
  match Hashtbl.find_opt ctx.cat.Catalog.global_vars "__analyzed" with
  | Some (Value.Bool true) -> true
  | _ -> false

let state_pred ctx name =
  let c = ctx.cat in
  match name with
  | "in_txn" -> c.Catalog.in_txn
  | "has_trigger" -> Hashtbl.length c.Catalog.triggers > 0
  | "has_rule" -> Hashtbl.length c.Catalog.rules > 0
  | "has_view" -> Hashtbl.length c.Catalog.views > 0
  | "has_matview" ->
    Hashtbl.fold
      (fun _ (v : Catalog.view) acc -> acc || v.v_materialized)
      c.Catalog.views false
  | "has_index" -> Hashtbl.length c.Catalog.indexes > 0
  | "has_sequence" -> Hashtbl.length c.Catalog.sequences > 0
  | "has_temp_table" ->
    Hashtbl.fold
      (fun _ t acc -> acc || Table.is_temp t)
      c.Catalog.tables false
  | "has_user" -> Hashtbl.length c.Catalog.users > 1
  | "locked" -> Hashtbl.length c.Catalog.locks > 0
  | "listening" -> c.Catalog.listening <> []
  | "notify_pending" -> c.Catalog.notify_queue <> []
  | "has_savepoint" -> c.Catalog.savepoints <> []
  | "handler_open" -> Hashtbl.length c.Catalog.handlers > 0
  | "has_prepared" -> Hashtbl.length c.Catalog.prepared > 0
  | "multi_db" -> Hashtbl.length c.Catalog.databases > 1
  | "many_tables" -> Hashtbl.length c.Catalog.tables > 3
  | "analyzed" -> analyzed ctx
  | "non_root" -> c.Catalog.current_user <> "root"
  | "big_table" ->
    Hashtbl.fold
      (fun _ t acc -> acc || Table.row_count t > 100)
      c.Catalog.tables false
  | "empty_table_exists" ->
    Hashtbl.fold
      (fun _ t acc -> acc || Table.row_count t = 0)
      c.Catalog.tables false
  | name -> flag ctx name

(* ------------------------------------------------------------------ *)
(* Row environments                                                    *)
(* ------------------------------------------------------------------ *)

type binding = {
  b_alias : string;
  b_cols : string array;
  b_vals : Value.t array;
}

type env_row = binding list

let resolve_col (row : env_row) q name =
  match q with
  | Some alias -> (
      match List.find_opt (fun b -> String.equal b.b_alias alias) row with
      | None -> None
      | Some b ->
        let rec loop i =
          if i >= Array.length b.b_cols then None
          else if String.equal b.b_cols.(i) name then Some b.b_vals.(i)
          else loop (i + 1)
        in
        loop 0)
  | None ->
    let hits =
      List.filter_map
        (fun b ->
           let rec loop i =
             if i >= Array.length b.b_cols then None
             else if String.equal b.b_cols.(i) name then Some b.b_vals.(i)
             else loop (i + 1)
           in
           loop 0)
        row
    in
    (match hits with
     | [ v ] -> Some v
     | [] -> None
     | v :: _ -> Some v (* lax ambiguity resolution, MySQL-style *))

let null_binding b =
  { b with b_vals = Array.map (fun _ -> Value.Null) b.b_vals }

(* ------------------------------------------------------------------ *)
(* Aggregate machinery                                                 *)
(* ------------------------------------------------------------------ *)

(* Does this expression use an aggregate at the current query level
   (not inside a subquery)? *)
let rec expr_has_agg = function
  | Agg _ -> true
  | Lit _ | Col _ | Exists _ | Subquery _ -> false
  | Unop (_, a) | Cast (a, _) | Is_null (a, _) -> expr_has_agg a
  | Binop (_, a, b) -> expr_has_agg a || expr_has_agg b
  | Fn (_, args) -> List.exists expr_has_agg args
  | Case (whens, else_) ->
    List.exists (fun (c, v) -> expr_has_agg c || expr_has_agg v) whens
    || (match else_ with None -> false | Some e -> expr_has_agg e)
  | In_list { e; items; _ } -> expr_has_agg e || List.exists expr_has_agg items
  | Between { e; lo; hi; _ } ->
    expr_has_agg e || expr_has_agg lo || expr_has_agg hi
  | Like { e; pat; _ } -> expr_has_agg e || expr_has_agg pat
  | Win { args; _ } -> List.exists expr_has_agg args

let rec expr_has_win = function
  | Win _ -> true
  | Agg (_, _, Some a) -> expr_has_win a
  | Agg (_, _, None) | Lit _ | Col _ | Exists _ | Subquery _ -> false
  | Unop (_, a) | Cast (a, _) | Is_null (a, _) -> expr_has_win a
  | Binop (_, a, b) -> expr_has_win a || expr_has_win b
  | Fn (_, args) -> List.exists expr_has_win args
  | Case (whens, else_) ->
    List.exists (fun (c, v) -> expr_has_win c || expr_has_win v) whens
    || (match else_ with None -> false | Some e -> expr_has_win e)
  | In_list { e; items; _ } -> expr_has_win e || List.exists expr_has_win items
  | Between { e; lo; hi; _ } ->
    expr_has_win e || expr_has_win lo || expr_has_win hi
  | Like { e; pat; _ } -> expr_has_win e || expr_has_win pat

let proj_exprs projs =
  List.filter_map (function Proj (e, _) -> Some e | Star | Star_of _ -> None)
    projs

(* ------------------------------------------------------------------ *)
(* Main recursive machinery                                            *)
(* ------------------------------------------------------------------ *)

let rec scalar_env ctx : Expr_eval.env =
  { cols = (fun _ _ -> None);
    run_query = (fun q -> run_query ctx q);
    agg = Expr_eval.no_agg;
    win = Expr_eval.no_win;
    probe = (fun ~site ~key -> probe ctx site key) }

and row_env ctx (row : env_row) : Expr_eval.env =
  { (scalar_env ctx) with
    cols = (fun q name -> resolve_col row q name) }

and eval_scalar ctx e = Expr_eval.eval (scalar_env ctx) e

(* --- headers ------------------------------------------------------- *)

and headers_of_query ctx (q : query) : string list =
  (* Self-referencing or cyclic views would make header computation
     diverge; bound the recursion like the evaluator does. *)
  if ctx.shape_depth > ctx.limits.Limits.max_view_depth + 8 then [ "c1" ]
  else begin
    ctx.shape_depth <- ctx.shape_depth + 1;
    let result = headers_of_query_unguarded ctx q in
    ctx.shape_depth <- ctx.shape_depth - 1;
    result
  end

and headers_of_query_unguarded ctx (q : query) : string list =
  match q with
  | Q_values rows ->
    let n = match rows with [] -> 0 | r :: _ -> List.length r in
    List.init n (fun i -> Printf.sprintf "column%d" (i + 1))
  | Q_compound (a, _, _) -> headers_of_query ctx a
  | Q_select s ->
    List.concat_map
      (fun p ->
         match p with
         | Star -> (
             match s.from with
             | None -> [ "star" ]
             | Some f -> List.concat_map
                 (fun b -> Array.to_list b.b_cols)
                 (shape_of_from ctx f))
         | Star_of t -> (
             match s.from with
             | None -> [ t ^ ".star" ]
             | Some f ->
               (match
                  List.find_opt
                    (fun b -> String.equal b.b_alias t)
                    (shape_of_from ctx f)
                with
                | None -> [ t ^ ".star" ]
                | Some b -> Array.to_list b.b_cols))
         | Proj (_, Some alias) -> [ alias ]
         | Proj (Col (_, c), None) -> [ c ]
         | Proj (_, None) -> [ "expr" ])
      s.projs

(* The alias/column shape of a FROM clause, without evaluating rows. *)
and shape_of_from ctx (f : from_item) : binding list =
  if ctx.shape_depth > ctx.limits.Limits.max_view_depth + 8 then []
  else begin
    ctx.shape_depth <- ctx.shape_depth + 1;
    let result = shape_of_from_unguarded ctx f in
    ctx.shape_depth <- ctx.shape_depth - 1;
    result
  end

and shape_of_from_unguarded ctx (f : from_item) : binding list =
  match f with
  | From_table { name; alias } ->
    let alias = Option.value ~default:name alias in
    let cols =
      match List.assoc_opt name ctx.ctes with
      | Some rel -> Array.of_list rel.cr_headers
      | None -> (
          match Hashtbl.find_opt ctx.cat.Catalog.views name with
          | Some v -> Array.of_list (headers_of_query ctx v.v_query)
          | None -> (
              match Hashtbl.find_opt ctx.cat.Catalog.tables name with
              | Some t ->
                Array.map (fun c -> c.Table.c_name) (Table.cols t)
              | None -> [||]))
    in
    [ { b_alias = alias; b_cols = cols; b_vals = Array.map (fun _ -> Value.Null) cols } ]
  | From_join { left; right; _ } ->
    shape_of_from ctx left @ shape_of_from ctx right
  | From_subquery { q; alias } ->
    let cols = Array.of_list (headers_of_query ctx q) in
    [ { b_alias = alias; b_cols = cols;
        b_vals = Array.map (fun _ -> Value.Null) cols } ]

(* --- FROM evaluation ------------------------------------------------ *)

and eval_from ctx ~where (f : from_item) : env_row list =
  match f with
  | From_table { name; alias } ->
    let alias_name = Option.value ~default:name alias in
    (* CTE relations shadow everything, then views, then tables. *)
    (match List.assoc_opt name ctx.ctes with
     | Some rel ->
       probe ctx s_cte (bucket (List.length rel.cr_rows));
       let cols = Array.of_list rel.cr_headers in
       List.map
         (fun vals -> [ { b_alias = alias_name; b_cols = cols; b_vals = vals } ])
         rel.cr_rows
     | None -> (
         match Hashtbl.find_opt ctx.cat.Catalog.views name with
         | Some v -> eval_view ctx v alias_name
         | None ->
           let table = Catalog.find_table ctx.cat name in
           check_lock ctx name `Read;
           let cols = Array.map (fun c -> c.Table.c_name) (Table.cols table) in
           let access =
             match ctx.plan_mode with
             | Plan_force_seq -> Planner.Seq_scan
             | Plan_auto ->
               Planner.choose_access ctx.cat ~analyzed:(analyzed ctx)
                 ~table:name ~where
           in
           probe ctx s_access
             ((Planner.access_tag access * 8) lor state_shape ctx);
           let rows =
             match access with
             | Planner.Empty_short ->
               set_flag ctx "empty_scan";
               []
             | Planner.Index_eq (idx_name, key_expr) -> (
                 set_flag ctx "index_scan";
                 match Hashtbl.find_opt ctx.cat.Catalog.indexes idx_name with
                 | None -> Table.to_rows table |> List.map snd
                 | Some spec ->
                   let key = eval_scalar ctx key_expr in
                   let rowids = Index.find spec.x_data [ key ] in
                   let rowids =
                     (* test-only planted planner bug: the index path
                        silently loses its first match *)
                     if Profile.quirk ctx.profile "index_eq_skips_first"
                     then match rowids with [] -> [] | _ :: tl -> tl
                     else rowids
                   in
                   List.filter_map (Table.find_row table) rowids)
             | Planner.Seq_scan -> Table.to_rows table |> List.map snd
           in
           ctx.rows_scanned <- ctx.rows_scanned + List.length rows;
           probe ctx s_scan (bucket (List.length rows));
           List.map
             (fun vals ->
                [ { b_alias = alias_name; b_cols = cols; b_vals = vals } ])
             rows))
  | From_subquery { q; alias } ->
    let rows = run_query ctx q in
    let cols = Array.of_list (headers_of_query ctx q) in
    ctx.rows_scanned <- ctx.rows_scanned + List.length rows;
    probe ctx s_scan (16 + bucket (List.length rows));
    List.map
      (fun vals ->
         let vals =
           if Array.length vals = Array.length cols then vals
           else
             Array.init (Array.length cols) (fun i ->
                 if i < Array.length vals then vals.(i) else Value.Null)
         in
         [ { b_alias = alias; b_cols = cols; b_vals = vals } ])
      rows
  | From_join { left; kind; right; on } ->
    let lrows = eval_from ctx ~where:None left in
    let rrows = eval_from ctx ~where:None right in
    let kind_tag =
      match kind with Inner -> 0 | Left -> 1 | Right -> 2 | Cross -> 3
    in
    probe ctx s_join
      ((kind_tag * 16) lor (bucket (List.length lrows) * 2)
       lor if rrows = [] then 1 else 0);
    let total = List.length lrows * List.length rrows in
    if total > ctx.limits.Limits.max_result_rows * 4 then
      Errors.fail (Errors.Limit_exceeded "join size");
    let on_ok combined =
      match on with
      | None -> true
      | Some e -> Expr_eval.eval_bool (row_env ctx combined) e
    in
    (match kind with
     | Inner | Cross ->
       List.concat_map
         (fun l ->
            List.filter_map
              (fun r ->
                 let combined = l @ r in
                 if kind = Cross || on_ok combined then Some combined
                 else None)
              rrows)
         lrows
     | Left ->
       let rshape = shape_of_from ctx right in
       List.concat_map
         (fun l ->
            let matches =
              List.filter_map
                (fun r ->
                   let combined = l @ r in
                   if on_ok combined then Some combined else None)
                rrows
            in
            if matches = [] then begin
              set_flag ctx "outer_null_row";
              [ l @ List.map null_binding rshape ]
            end
            else matches)
         lrows
     | Right ->
       let lshape = shape_of_from ctx left in
       List.concat_map
         (fun r ->
            let matches =
              List.filter_map
                (fun l ->
                   let combined = l @ r in
                   if on_ok combined then Some combined else None)
                lrows
            in
            if matches = [] then begin
              set_flag ctx "outer_null_row";
              [ List.map null_binding lshape @ r ]
            end
            else matches)
         rrows)

and eval_view ctx (v : Catalog.view) alias_name : env_row list =
  if ctx.query_depth > ctx.limits.Limits.max_view_depth then
    Errors.fail (Errors.Limit_exceeded "view nesting depth");
  probe ctx s_view
    ((if v.v_materialized then 8 else 0) lor state_shape ctx land 7);
  set_flag ctx "view_expanded";
  let cols = Array.of_list (headers_of_query ctx v.v_query) in
  let rows =
    if v.v_materialized then begin
      match v.v_cache with
      | Some rows ->
        set_flag ctx "matview_cache_hit";
        rows
      | None ->
        set_flag ctx "matview_stale";
        []
    end
    else run_query ctx v.v_query
  in
  List.map
    (fun vals ->
       let vals =
         if Array.length vals = Array.length cols then vals
         else
           Array.init (Array.length cols) (fun i ->
               if i < Array.length vals then vals.(i) else Value.Null)
       in
       [ { b_alias = alias_name; b_cols = cols; b_vals = vals } ])
    rows

and check_lock ctx table intent =
  match Hashtbl.find_opt ctx.cat.Catalog.locks table with
  | Some Lk_read when intent = `Write ->
    probe ctx s_txn 31;
    Errors.fail
      (Errors.Semantic (Printf.sprintf "table %s is READ locked" table))
  | _ ->
    if Hashtbl.length ctx.cat.Catalog.locks > 0 then probe ctx s_txn 30

(* --- query execution ------------------------------------------------ *)

and run_query ctx (q : query) : Value.t array list =
  ctx.query_depth <- ctx.query_depth + 1;
  probe ctx s_scan (48 + min 7 ctx.query_depth);
  if ctx.query_depth > ctx.limits.Limits.max_view_depth + 8 then begin
    ctx.query_depth <- ctx.query_depth - 1;
    Errors.fail (Errors.Limit_exceeded "query nesting depth")
  end;
  let finally () = ctx.query_depth <- ctx.query_depth - 1 in
  match
    (match q with
     | Q_values rows ->
       probe ctx s_values (bucket (List.length rows));
       List.map
         (fun row -> Array.of_list (List.map (eval_scalar ctx) row))
         rows
     | Q_select s -> run_select ctx s
     | Q_compound (a, op, b) ->
       let ra = run_query ctx a in
       let rb = run_query ctx b in
       let op_tag =
         match op with
         | Union -> 0
         | Union_all -> 1
         | Intersect -> 2
         | Except -> 3
       in
       probe ctx s_setop
         ((op_tag * 8) lor (if ra = [] then 1 else 0)
          lor if rb = [] then 2 else 0);
       probe ctx s_setop
         (64 + (op_tag * 8)
          + min 7 (bucket (List.length ra + List.length rb)));
       let module RS = Set.Make (struct
           type t = Value.t array

           let compare x y =
             let nx = Array.length x and ny = Array.length y in
             if nx <> ny then Int.compare nx ny
             else
               let rec loop i =
                 if i >= nx then 0
                 else
                   let c = Value.compare_total x.(i) y.(i) in
                   if c <> 0 then c else loop (i + 1)
               in
               loop 0
         end) in
       (match op with
        | Union_all -> ra @ rb
        | Union -> RS.elements (RS.union (RS.of_list ra) (RS.of_list rb))
        | Intersect ->
          RS.elements (RS.inter (RS.of_list ra) (RS.of_list rb))
        | Except -> RS.elements (RS.diff (RS.of_list ra) (RS.of_list rb))))
  with
  | rows ->
    finally ();
    if List.length rows > ctx.limits.Limits.max_result_rows then begin
      probe ctx s_limit 31;
      Errors.fail (Errors.Limit_exceeded "result rows")
    end;
    rows
  | exception e ->
    finally ();
    raise e

and run_select ctx (s : select) : Value.t array list =
  (* FROM *)
  let base_rows =
    match s.from with
    | None -> [ [] ]
    | Some f -> eval_from ctx ~where:s.where f
  in
  (* WHERE *)
  let rows =
    match s.where with
    | None -> base_rows
    | Some w ->
      let kept =
        List.filter (fun row -> Expr_eval.eval_bool (row_env ctx row) w)
          base_rows
      in
      probe ctx s_where
        ((bucket (List.length kept) * 4)
         lor (if kept = [] && base_rows <> [] then 1 else 0)
         lor if List.length kept = List.length base_rows then 2 else 0);
      kept
  in
  let has_agg =
    List.exists expr_has_agg (proj_exprs s.projs)
    || (match s.having with Some h -> expr_has_agg h | None -> false)
  in
  let has_win = List.exists expr_has_win (proj_exprs s.projs) in
  (* A (group-env, sort-env) list: each entry produces one output row. *)
  let output_units =
    if s.group_by <> [] || has_agg then begin
      probe ctx s_group
        ((bucket (List.length rows) * 4)
         lor (if s.group_by = [] then 1 else 0)
         lor if s.having <> None then 2 else 0);
      let groups = group_rows ctx s.group_by rows in
      let groups =
        match s.having with
        | None -> groups
        | Some h ->
          let kept =
            List.filter
              (fun (rep, members) ->
                 Expr_eval.eval_bool (group_env ctx rep members) h)
              groups
          in
          probe ctx s_having (bucket (List.length kept));
          kept
      in
      List.map (fun (rep, members) -> (group_env ctx rep members, rep)) groups
    end
    else if has_win then begin
      probe ctx s_window (bucket (List.length rows));
      set_flag ctx "window_executed";
      let arr = Array.of_list rows in
      Array.to_list
        (Array.mapi (fun i row -> (window_env ctx arr i row, row)) arr)
    end
    else List.map (fun row -> (row_env ctx row, row)) rows
  in
  (* projection + order keys *)
  let projected =
    List.map
      (fun (env, row) ->
         let out = project ctx env row s.projs in
         let keys = List.map (fun (e, _) -> Expr_eval.eval env e) s.order_by in
         (keys, out))
      output_units
  in
  probe ctx s_proj (bucket (List.length projected));
  (match projected with
   | (_, first) :: _ -> probe ctx s_proj (64 + row_sig first)
   | [] -> ());
  (* DISTINCT *)
  let projected =
    if s.distinct then begin
      probe ctx s_distinct (bucket (List.length projected));
      let seen = Hashtbl.create 16 in
      List.filter
        (fun (_, out) ->
           let key =
             Array.fold_left
               (fun acc v -> (acc * 31) + Value.hash_value v)
               0 out
           in
           let candidates = Hashtbl.find_all seen key in
           let dup =
             List.exists
               (fun other ->
                  Array.length other = Array.length out
                  && (let ok = ref true in
                      Array.iteri
                        (fun i v ->
                           if Value.compare_total v out.(i) <> 0 then
                             ok := false)
                        other;
                      !ok))
               candidates
           in
           if dup then false
           else begin
             Hashtbl.add seen key out;
             true
           end)
        projected
    end
    else projected
  in
  (* ORDER BY *)
  let projected =
    if s.order_by = [] then projected
    else begin
      probe ctx s_sort
        ((bucket (List.length projected) * 2)
         lor if List.exists (fun (_, d) -> d = Desc) s.order_by then 1 else 0);
      (match projected with
       | (k1 :: _, _) :: _ ->
         probe ctx s_sort
           (64 + (vkind_of k1 * 8) + min 7 (List.length s.order_by))
       | _ -> ());
      let dirs = List.map snd s.order_by in
      List.stable_sort
        (fun (ka, _) (kb, _) ->
           let rec cmp ks1 ks2 ds =
             match (ks1, ks2, ds) with
             | [], [], _ -> 0
             | k1 :: t1, k2 :: t2, d :: td ->
               let c = Value.compare_total k1 k2 in
               let c = match d with Asc -> c | Desc -> -c in
               if c <> 0 then c else cmp t1 t2 td
             | _ -> 0
           in
           cmp ka kb dirs)
        projected
    end
  in
  let rows = List.map snd projected in
  (* OFFSET / LIMIT *)
  let rows =
    match s.offset with
    | None -> rows
    | Some off ->
      probe ctx s_limit 8;
      let rec drop n l =
        if n <= 0 then l else match l with [] -> [] | _ :: t -> drop (n - 1) t
      in
      drop off rows
  in
  match s.limit with
  | None -> rows
  | Some lim ->
    probe ctx s_limit
      (if List.length rows > lim then 1 else 2);
    let rec take n l =
      if n <= 0 then []
      else match l with [] -> [] | h :: t -> h :: take (n - 1) t
    in
    take (max 0 lim) rows

and group_rows ctx group_by rows : (env_row * env_row list) list =
  if group_by = [] then
    (* implicit single group, even over zero rows *)
    [ ((match rows with r :: _ -> r | [] -> []), rows) ]
  else begin
    let tbl : (string, env_row * env_row list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let order = ref [] in
    List.iter
      (fun row ->
         let env = row_env ctx row in
         let key =
           String.concat "\x00"
             (List.map
                (fun e -> Value.to_display (Expr_eval.eval env e) ^ "|"
                          ^ Value.type_name (Expr_eval.eval env e))
                group_by)
         in
         match Hashtbl.find_opt tbl key with
         | Some (_, members) -> members := row :: !members
         | None ->
           let cell = (row, ref [ row ]) in
           Hashtbl.add tbl key cell;
           order := key :: !order)
      rows;
    List.rev_map
      (fun key ->
         let rep, members = Hashtbl.find tbl key in
         (rep, List.rev !members))
      !order
  end

and group_env ctx rep members : Expr_eval.env =
  let base = row_env ctx rep in
  { base with
    agg =
      (fun fn distinct arg ->
         compute_agg ctx fn distinct arg members) }

and compute_agg ctx fn distinct arg members =
  let fn_tag =
    match fn with
    | Count -> 0 | Sum -> 1 | Avg -> 2 | Min -> 3 | Max -> 4
    | Group_concat -> 5
  in
  probe ctx s_group
    (64
     + (fn_tag * 16)
     + (if distinct then 8 else 0)
     + min 7 (bucket (List.length members)));
  let values =
    match arg with
    | None -> List.map (fun _ -> Value.Int 1) members
    | Some e ->
      List.map (fun row -> Expr_eval.eval (row_env ctx row) e) members
  in
  let values =
    if distinct then begin
      let seen = ref [] in
      List.filter
        (fun v ->
           if List.exists (fun o -> Value.compare_total o v = 0) !seen then
             false
           else begin
             seen := v :: !seen;
             true
           end)
        values
    end
    else values
  in
  let non_null = List.filter (fun v -> v <> Value.Null) values in
  match fn with
  | Count ->
    Value.Int
      (match arg with
       | None -> List.length values
       | Some _ -> List.length non_null)
  | Sum ->
    if non_null = [] then Value.Null
    else
      List.fold_left
        (fun acc v ->
           match (acc, v) with
           | Value.Int a, Value.Int b -> Value.Int (a + b)
           | _ ->
             let f = function
               | Value.Int n -> float_of_int n
               | Value.Float f -> f
               | Value.Bool b -> if b then 1.0 else 0.0
               | Value.Text s -> (
                   try float_of_string s with Failure _ -> 0.0)
               | Value.Null -> 0.0
             in
             Value.Float (f acc +. f v))
        (Value.Int 0) non_null
  | Avg -> (
      match compute_agg ctx Sum false arg members with
      | Value.Null -> Value.Null
      | sum ->
        let n = List.length non_null in
        if n = 0 then Value.Null
        else
          let f =
            match sum with
            | Value.Int s -> float_of_int s
            | Value.Float s -> s
            | _ -> 0.0
          in
          Value.Float (f /. float_of_int n))
  | Min ->
    (match non_null with
     | [] -> Value.Null
     | first :: rest ->
       List.fold_left
         (fun acc v -> if Value.compare_total v acc < 0 then v else acc)
         first rest)
  | Max ->
    (match non_null with
     | [] -> Value.Null
     | first :: rest ->
       List.fold_left
         (fun acc v -> if Value.compare_total v acc > 0 then v else acc)
         first rest)
  | Group_concat ->
    if non_null = [] then Value.Null
    else
      Value.Text
        (String.concat "," (List.map Value.to_display non_null))

and window_env ctx all_rows cur_idx row : Expr_eval.env =
  let base = row_env ctx row in
  { base with
    win =
      (fun fn args over ->
         compute_window ctx all_rows cur_idx fn args over) }

and compute_window ctx all_rows cur_idx fn args over =
  let fn_tag =
    match fn with
    | Row_number -> 0 | Rank -> 1 | Dense_rank -> 2 | Lead -> 3 | Lag -> 4
    | Ntile -> 5
  in
  probe ctx s_window
    (32
     + (fn_tag * 8)
     + (if over.partition_by <> [] then 4 else 0)
     + (match over.frame with
        | None -> 0
        | Some { f_kind = F_rows; _ } -> 1
        | Some { f_kind = F_range; _ } -> 2));
  let eval_at i e = Expr_eval.eval (row_env ctx all_rows.(i)) e in
  let n = Array.length all_rows in
  let part_key i = List.map (eval_at i) over.partition_by in
  let keys_equal a b =
    List.length a = List.length b
    && List.for_all2 (fun x y -> Value.compare_total x y = 0) a b
  in
  let mine = part_key cur_idx in
  let part =
    List.filter
      (fun i -> keys_equal (part_key i) mine)
      (List.init n (fun i -> i))
  in
  let order_key i = List.map (fun (e, _) -> eval_at i e) over.w_order_by in
  let dirs = List.map snd over.w_order_by in
  let cmp_order a b =
    let rec loop ka kb ds =
      match (ka, kb, ds) with
      | [], [], _ -> 0
      | x :: xs, y :: ys, d :: dt ->
        let c = Value.compare_total x y in
        let c = match d with Asc -> c | Desc -> -c in
        if c <> 0 then c else loop xs ys dt
      | _ -> 0
    in
    loop (order_key a) (order_key b) dirs
  in
  let sorted = List.stable_sort cmp_order part in
  let pos =
    let rec find i = function
      | [] -> 0
      | x :: _ when x = cur_idx -> i
      | _ :: t -> find (i + 1) t
    in
    find 0 sorted
  in
  if over.frame <> None then set_flag ctx "window_frame";
  match fn with
  | Row_number -> Value.Int (pos + 1)
  | Rank ->
    let before =
      List.filteri (fun i x -> i < pos && cmp_order x cur_idx < 0) sorted
    in
    Value.Int (List.length before + 1)
  | Dense_rank ->
    let distinct_before =
      List.sort_uniq compare
        (List.filteri (fun i _ -> i < pos) sorted
         |> List.filter_map (fun x ->
             if cmp_order x cur_idx < 0 then
               Some (List.map Value.to_display (order_key x))
             else None))
    in
    Value.Int (List.length distinct_before + 1)
  | Lead | Lag ->
    let offset =
      match args with
      | _ :: o :: _ -> (
          match eval_scalar ctx o with
          | Value.Int n -> n
          | _ -> 1)
      | _ -> 1
    in
    let target = if fn = Lead then pos + offset else pos - offset in
    if target < 0 || target >= List.length sorted then
      (match args with
       | _ :: _ :: d :: _ -> eval_scalar ctx d
       | _ -> Value.Null)
    else
      let idx = List.nth sorted target in
      (match args with
       | e :: _ -> eval_at idx e
       | [] -> Value.Null)
  | Ntile ->
    let buckets =
      match args with
      | b :: _ -> (
          match eval_scalar ctx b with
          | Value.Int n when n > 0 -> n
          | _ -> 1)
      | [] -> 1
    in
    let total = List.length sorted in
    Value.Int ((pos * buckets / max 1 total) + 1)

and project ctx (env : Expr_eval.env) (row : env_row) projs : Value.t array =
  let out = ref [] in
  List.iter
    (fun p ->
       match p with
       | Star ->
         List.iter
           (fun b -> Array.iter (fun v -> out := v :: !out) b.b_vals)
           row
       | Star_of t -> (
           match List.find_opt (fun b -> String.equal b.b_alias t) row with
           | Some b -> Array.iter (fun v -> out := v :: !out) b.b_vals
           | None ->
             probe ctx s_err 7;
             Errors.fail (Errors.No_such_table t))
       | Proj (e, _) -> out := Expr_eval.eval env e :: !out)
    projs;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Statement execution                                                 *)
(* ------------------------------------------------------------------ *)

let rebuild_table_indexes ctx table_name =
  Hashtbl.iter
    (fun _ (spec : Catalog.index_spec) ->
       if String.equal spec.x_table table_name then begin
         Index.clear spec.x_data;
         match Hashtbl.find_opt ctx.cat.Catalog.tables table_name with
         | None -> ()
         | Some table ->
           let positions =
             List.filter_map (Table.col_index table) spec.x_cols
           in
           if List.length positions = List.length spec.x_cols then
             Table.iter
               (fun rowid row ->
                  let key = List.map (fun p -> row.(p)) positions in
                  ignore (Index.add spec.x_data key rowid))
               table
       end)
    ctx.cat.Catalog.indexes

let priv_covers granted needed =
  List.exists (fun p -> p = P_all || p = needed) granted

let check_privs ctx stmt =
  let c = ctx.cat in
  if not (String.equal c.Catalog.current_user "root") then begin
    let user =
      match Hashtbl.find_opt c.Catalog.users c.Catalog.current_user with
      | Some u -> u
      | None ->
        probe ctx s_dcl 15;
        Errors.fail (Errors.Permission_denied "unknown current user")
    in
    let require table needed =
      if Hashtbl.mem c.Catalog.tables table then begin
        let granted =
          match List.assoc_opt table user.Catalog.us_privs with
          | Some ps -> ps
          | None -> []
        in
        if not (priv_covers granted needed) then begin
          probe ctx s_dcl 14;
          Errors.fail
            (Errors.Permission_denied
               (Printf.sprintf "table %s for user %s" table
                  c.Catalog.current_user))
        end
      end
    in
    List.iter (fun t -> require t P_select) (Ast_util.tables_read stmt);
    List.iter
      (fun t ->
         let needed =
           match Ast.type_of_stmt stmt with
           | Stmt_type.Insert | Stmt_type.Insert_select
           | Stmt_type.Replace_into | Stmt_type.Copy_from
           | Stmt_type.Load_data -> P_insert
           | Stmt_type.Update -> P_update
           | Stmt_type.Delete | Stmt_type.Truncate -> P_delete
           | _ -> P_all
         in
         require t needed)
      (Ast_util.tables_written stmt)
  end

let unique_key_sets ctx table_name table =
  (* Column positions whose value sets must be unique: each UNIQUE/PK
     column by itself, plus every unique index's column list. *)
  let singles =
    Array.to_list (Table.cols table)
    |> List.mapi (fun i c -> (i, c))
    |> List.filter_map (fun (i, c) ->
        if c.Table.c_unique then Some [ i ] else None)
  in
  let from_indexes =
    Catalog.indexes_on ctx.cat table_name
    |> List.filter_map (fun (spec : Catalog.index_spec) ->
        if not spec.x_unique then None
        else
          let ps = List.filter_map (Table.col_index table) spec.x_cols in
          if List.length ps = List.length spec.x_cols then Some ps else None)
  in
  singles @ from_indexes

let find_conflicts ctx table_name table row ~exclude =
  let key_sets = unique_key_sets ctx table_name table in
  if key_sets <> [] && Hashtbl.length ctx.cat.Catalog.indexes > 0 then
    probe ctx s_constraint 9;
  let conflicts = ref [] in
  List.iter
    (fun positions ->
       let mine = List.map (fun p -> row.(p)) positions in
       if not (List.exists (fun v -> v = Value.Null) mine) then
         Table.iter
           (fun rowid other ->
              if (not (List.mem rowid exclude))
                 && List.for_all
                      (fun p -> Value.compare_total row.(p) other.(p) = 0)
                      positions
                 && not (List.mem rowid !conflicts)
              then conflicts := rowid :: !conflicts)
           table)
    key_sets;
  !conflicts

let rec exec ctx stmt : result =
  let ty = Ast.type_of_stmt stmt in
  (* Real DBMSs share most code between statement types (parser, catalog,
     storage), so executing a new type buys a few branches, not a whole
     compartment: the dispatch key keeps only 3 state bits per type. *)
  probe ctx s_exec
    ((Stmt_type.to_index ty * 8) lor (state_shape ctx land 7));
  probe ctx s_state (state_shape ctx);
  check_privs ctx stmt;
  match stmt with
  (* ---------------- DDL ---------------- *)
  | S_create_table { temp; if_not_exists; name; cols } ->
    if Catalog.name_in_use ctx.cat name then begin
      probe ctx s_ddl 1;
      if if_not_exists then Done "table exists, skipped"
      else Errors.fail (Errors.Duplicate_object ("table", name))
    end
    else begin
      if cols = [] then Errors.fail (Errors.Semantic "table with no columns");
      let names = List.map (fun c -> c.col_name) cols in
      if List.length (List.sort_uniq String.compare names)
         <> List.length names
      then Errors.fail (Errors.Semantic "duplicate column name");
      let table =
        Table.create ~name ~temp (List.map Table.col_of_def cols)
      in
      Hashtbl.replace ctx.cat.Catalog.tables name table;
      probe ctx s_ddl (if temp then 2 else 0);
      if temp then set_flag ctx "temp_created";
      Done "table created"
    end
  | S_create_index { unique; name; table; cols } ->
    if Hashtbl.mem ctx.cat.Catalog.indexes name then begin
      probe ctx s_ddl 3;
      Errors.fail (Errors.Duplicate_object ("index", name))
    end;
    let tbl = Catalog.find_table ctx.cat table in
    let positions =
      List.map
        (fun c ->
           match Table.col_index tbl c with
           | Some p -> p
           | None -> Errors.fail (Errors.No_such_column c))
        cols
    in
    let data = Index.create ~unique in
    let ok = ref true in
    Table.iter
      (fun rowid row ->
         let key = List.map (fun p -> row.(p)) positions in
         match Index.add data key rowid with
         | `Ok -> ()
         | `Dup _ -> ok := false)
      tbl;
    if not !ok then begin
      probe ctx s_constraint 8;
      set_flag ctx "unique_violated";
      Errors.fail
        (Errors.Constraint_violation "duplicate key while building index")
    end;
    Hashtbl.replace ctx.cat.Catalog.indexes name
      { Catalog.x_name = name; x_table = table; x_cols = cols;
        x_unique = unique; x_data = data };
    probe ctx s_ddl (if unique then 5 else 4);
    Done "index created"
  | S_create_view { materialized; name; query } ->
    if Catalog.name_in_use ctx.cat name
       || Hashtbl.mem ctx.cat.Catalog.views name
    then begin
      probe ctx s_ddl 6;
      Errors.fail (Errors.Duplicate_object ("view", name))
    end;
    let cache =
      if materialized then begin
        set_flag ctx "matview_refreshed";
        Some (run_query ctx query)
      end
      else None
    in
    Hashtbl.replace ctx.cat.Catalog.views name
      { Catalog.v_name = name; v_materialized = materialized;
        v_query = query; v_cache = cache };
    probe ctx s_ddl (if materialized then 8 else 7);
    Done "view created"
  | S_create_trigger { name; timing; event; table; body } ->
    ignore (Catalog.find_table ctx.cat table);
    if Hashtbl.mem ctx.cat.Catalog.triggers name then begin
      probe ctx s_ddl 9;
      Errors.fail (Errors.Duplicate_object ("trigger", name))
    end;
    List.iter
      (fun s ->
         match s with
         | S_insert _ | S_replace _ | S_update _ | S_delete _ -> ()
         | _ ->
           probe ctx s_err 3;
           Errors.fail (Errors.Semantic "trigger body must be DML"))
      body;
    Hashtbl.replace ctx.cat.Catalog.triggers name
      { Catalog.tr_name = name; tr_table = table; tr_timing = timing;
        tr_event = event; tr_body = body };
    probe ctx s_ddl 10;
    set_flag ctx "trigger_created";
    Done "trigger created"
  | S_create_rule { name; table; event; instead; action } ->
    ignore (Catalog.find_table ctx.cat table);
    if Hashtbl.mem ctx.cat.Catalog.rules name then begin
      probe ctx s_ddl 11;
      Errors.fail (Errors.Duplicate_object ("rule", name))
    end;
    Hashtbl.replace ctx.cat.Catalog.rules name
      { Catalog.r_name = name; r_table = table; r_event = event;
        r_instead = instead; r_action = action };
    probe ctx s_ddl (if instead then 13 else 12);
    set_flag ctx "rule_created";
    Done "rule created"
  | S_create_sequence { name; start; step } ->
    if Hashtbl.mem ctx.cat.Catalog.sequences name then begin
      probe ctx s_ddl 16;
      Errors.fail (Errors.Duplicate_object ("sequence", name))
    end;
    if step = 0 then Errors.fail (Errors.Semantic "zero sequence step");
    Hashtbl.replace ctx.cat.Catalog.sequences name
      { Catalog.sq_value = start; sq_step = step; sq_start = start };
    probe ctx s_seq 0;
    Done "sequence created"
  | S_create_schema name ->
    if Hashtbl.mem ctx.cat.Catalog.schemas name then begin
      probe ctx s_ddl 17;
      Errors.fail (Errors.Duplicate_object ("schema", name))
    end;
    Hashtbl.replace ctx.cat.Catalog.schemas name ();
    Done "schema created"
  | S_create_database name ->
    if Hashtbl.mem ctx.cat.Catalog.databases name then begin
      probe ctx s_ddl 18;
      Errors.fail (Errors.Duplicate_object ("database", name))
    end;
    Hashtbl.replace ctx.cat.Catalog.databases name ();
    Done "database created"
  | S_create_user { user; password } ->
    if Hashtbl.mem ctx.cat.Catalog.users user then begin
      probe ctx s_dcl 1;
      Errors.fail (Errors.Duplicate_object ("user", user))
    end;
    Hashtbl.replace ctx.cat.Catalog.users user
      { Catalog.us_password = password; us_privs = [] };
    probe ctx s_dcl 0;
    Done "user created"
  | S_drop { target; if_exists } -> exec_drop ctx target if_exists
  | S_alter_table (table, action) -> exec_alter_table ctx table action
  | S_alter_sequence { name; step } -> (
      match Hashtbl.find_opt ctx.cat.Catalog.sequences name with
      | None ->
        probe ctx s_seq 5;
        Errors.fail (Errors.No_such_object ("sequence", name))
      | Some sq ->
        if step = 0 then Errors.fail (Errors.Semantic "zero sequence step");
        sq.Catalog.sq_step <- step;
        probe ctx s_seq 1;
        Done "sequence altered")
  | S_alter_user { user; password } -> (
      match Hashtbl.find_opt ctx.cat.Catalog.users user with
      | None ->
        probe ctx s_dcl 2;
        Errors.fail (Errors.No_such_object ("user", user))
      | Some u ->
        u.Catalog.us_password <- password;
        Done "user altered")
  | S_rename_table pairs ->
    List.iter
      (fun (a, b) ->
         let table = Catalog.find_table ctx.cat a in
         if Catalog.name_in_use ctx.cat b then begin
           probe ctx s_ddl 20;
           Errors.fail (Errors.Duplicate_object ("table", b))
         end;
         Hashtbl.remove ctx.cat.Catalog.tables a;
         Table.set_name table b;
         Hashtbl.replace ctx.cat.Catalog.tables b table;
         rename_refs ctx a b)
      pairs;
    probe ctx s_ddl 19;
    Done "renamed"
  | S_truncate name ->
    let table = Catalog.find_table ctx.cat name in
    check_lock ctx name `Write;
    let n = Table.truncate table in
    rebuild_table_indexes ctx name;
    probe ctx s_ddl (21 + min 2 (bucket n));
    if ctx.cat.Catalog.in_txn then set_flag ctx "truncate_in_txn";
    Done (Printf.sprintf "truncated %d rows" n)
  | S_comment_on { table; comment } ->
    ignore (Catalog.find_table ctx.cat table);
    Hashtbl.replace ctx.cat.Catalog.comments table comment;
    probe ctx s_ddl 25;
    Done "comment set"
  (* ---------------- DML ---------------- *)
  | S_insert i -> exec_insert ctx ~replace:false ~in_with:false i
  | S_replace i -> exec_insert ctx ~replace:true ~in_with:false i
  | S_update u -> exec_update ctx ~in_with:false u
  | S_delete d -> exec_delete ctx ~in_with:false d
  | S_copy_to { src; header } ->
    let headers, rows =
      match src with
      | Cs_table t ->
        let table = Catalog.find_table ctx.cat t in
        ( Array.to_list
            (Array.map (fun c -> c.Table.c_name) (Table.cols table)),
          List.map snd (Table.to_rows table) )
      | Cs_query q -> (headers_of_query ctx q, run_query ctx q)
    in
    probe ctx s_copy
      ((bucket (List.length rows) * 2) lor if header then 1 else 0);
    Rows (headers, rows)
  | S_copy_from { table; rows } ->
    let lit_rows = List.map (List.map (fun l -> Lit l)) rows in
    exec_insert ctx ~replace:false ~in_with:false
      { i_table = table; i_cols = []; i_source = Src_values lit_rows;
        i_ignore = false }
  | S_load_data { table; rows } ->
    let lit_rows = List.map (List.map (fun l -> Lit l)) rows in
    probe ctx s_copy 8;
    exec_insert ctx ~replace:false ~in_with:false
      { i_table = table; i_cols = []; i_source = Src_values lit_rows;
        i_ignore = true }
  (* ---------------- DQL ---------------- *)
  | S_select q -> Rows (headers_of_query ctx q, run_query ctx q)
  | S_with { ctes; body } -> exec_with ctx ctes body
  | S_table t ->
    let table = Catalog.find_table ctx.cat t in
    probe ctx s_scan (32 + bucket (Table.row_count table));
    Rows
      ( Array.to_list (Array.map (fun c -> c.Table.c_name) (Table.cols table)),
        List.map snd (Table.to_rows table) )
  | S_explain inner ->
    let lines =
      Planner.explain_lines ctx.cat ~analyzed:(analyzed ctx) inner
    in
    probe ctx s_explain (bucket (List.length lines));
    Rows ([ "QUERY PLAN" ], List.map (fun l -> [| Value.Text l |]) lines)
  | S_describe t | S_show (Sh_columns t) ->
    let table = Catalog.find_table ctx.cat t in
    probe ctx s_show 1;
    Rows
      ( [ "Field"; "Type"; "Null"; "Key" ],
        Array.to_list
          (Array.map
             (fun c ->
                [| Value.Text c.Table.c_name;
                   Value.Text (Sql_printer.data_type c.Table.c_type);
                   Value.Text (if c.Table.c_not_null then "NO" else "YES");
                   Value.Text
                     (if c.Table.c_primary then "PRI"
                      else if c.Table.c_unique then "UNI"
                      else "") |])
             (Table.cols table)) )
  | S_show Sh_tables ->
    probe ctx s_show 0;
    let names =
      Hashtbl.fold (fun n _ acc -> n :: acc) ctx.cat.Catalog.tables []
      @ Hashtbl.fold (fun n _ acc -> n :: acc) ctx.cat.Catalog.views []
    in
    Rows
      ( [ "Tables" ],
        List.map (fun n -> [| Value.Text n |]) (List.sort String.compare names) )
  | S_show Sh_variables ->
    probe ctx s_show 2;
    let vars =
      Hashtbl.fold
        (fun n v acc -> (n, v) :: acc)
        ctx.cat.Catalog.session_vars []
    in
    Rows
      ( [ "Variable_name"; "Value" ],
        List.map
          (fun (n, v) -> [| Value.Text n; Value.Text (Value.to_display v) |])
          (List.sort compare vars) )
  | S_show Sh_status ->
    probe ctx s_show 3;
    Rows
      ( [ "Variable_name"; "Value" ],
        [ [| Value.Text "tables"; Value.Int (Hashtbl.length ctx.cat.Catalog.tables) |];
          [| Value.Text "objects"; Value.Int (Catalog.object_count ctx.cat) |];
          [| Value.Text "in_txn"; Value.Bool ctx.cat.Catalog.in_txn |] ] )
  (* ---------------- DCL ---------------- *)
  | S_grant { privs; table; user } -> (
      ignore (Catalog.find_table ctx.cat table);
      match Hashtbl.find_opt ctx.cat.Catalog.users user with
      | None ->
        probe ctx s_dcl 4;
        Errors.fail (Errors.No_such_object ("user", user))
      | Some u ->
        let existing =
          Option.value ~default:[] (List.assoc_opt table u.Catalog.us_privs)
        in
        let merged =
          List.fold_left
            (fun acc p -> if List.mem p acc then acc else p :: acc)
            existing privs
        in
        u.Catalog.us_privs <-
          (table, merged) :: List.remove_assoc table u.Catalog.us_privs;
        probe ctx s_dcl 3;
        set_flag ctx "granted";
        Done "granted")
  | S_revoke { privs; table; user } -> (
      match Hashtbl.find_opt ctx.cat.Catalog.users user with
      | None ->
        probe ctx s_dcl 6;
        Errors.fail (Errors.No_such_object ("user", user))
      | Some u ->
        let existing =
          Option.value ~default:[] (List.assoc_opt table u.Catalog.us_privs)
        in
        let remaining =
          List.filter
            (fun p -> not (List.mem p privs || List.mem P_all privs))
            existing
        in
        u.Catalog.us_privs <-
          (table, remaining) :: List.remove_assoc table u.Catalog.us_privs;
        probe ctx s_dcl 5;
        Done "revoked")
  | S_set_role user ->
    if not (Hashtbl.mem ctx.cat.Catalog.users user) then begin
      probe ctx s_dcl 8;
      Errors.fail (Errors.No_such_object ("user", user))
    end;
    ctx.cat.Catalog.current_user <- user;
    probe ctx s_dcl 7;
    set_flag ctx "role_changed";
    Done "role set"
  (* ---------------- TCL ---------------- *)
  | S_begin ->
    if ctx.cat.Catalog.in_txn then begin
      probe ctx s_txn 1;
      Errors.fail (Errors.Semantic "transaction already in progress")
    end;
    ctx.cat.Catalog.txn_snapshot <- Some (Catalog.take_snapshot ctx.cat);
    ctx.cat.Catalog.in_txn <- true;
    probe ctx s_txn 0;
    Done "begin"
  | S_commit ->
    if ctx.cat.Catalog.in_txn then begin
      ctx.cat.Catalog.in_txn <- false;
      ctx.cat.Catalog.txn_snapshot <- None;
      ctx.cat.Catalog.savepoints <- [];
      probe ctx s_txn 2;
      Done "commit"
    end
    else begin
      probe ctx s_txn 3;
      Done "commit (no transaction)"
    end
  | S_rollback ->
    (match ctx.cat.Catalog.txn_snapshot with
     | Some snap when ctx.cat.Catalog.in_txn ->
       Catalog.restore_snapshot ctx.cat snap;
       ctx.cat.Catalog.in_txn <- false;
       ctx.cat.Catalog.txn_snapshot <- None;
       ctx.cat.Catalog.savepoints <- [];
       probe ctx s_txn 4;
       set_flag ctx "rolled_back";
       Done "rollback"
     | _ ->
       probe ctx s_txn 5;
       Done "rollback (no transaction)")
  | S_savepoint name ->
    if not ctx.cat.Catalog.in_txn then begin
      probe ctx s_txn 7;
      Errors.fail (Errors.Semantic "SAVEPOINT outside transaction")
    end;
    ctx.cat.Catalog.savepoints <-
      (name, Catalog.take_snapshot ctx.cat) :: ctx.cat.Catalog.savepoints;
    probe ctx s_txn 6;
    Done "savepoint"
  | S_release_savepoint name -> (
      match List.assoc_opt name ctx.cat.Catalog.savepoints with
      | None ->
        probe ctx s_txn 9;
        Errors.fail (Errors.No_such_object ("savepoint", name))
      | Some _ ->
        let rec drop = function
          | [] -> []
          | (n, _) :: rest when String.equal n name -> rest
          | _ :: rest -> drop rest
        in
        ctx.cat.Catalog.savepoints <- drop ctx.cat.Catalog.savepoints;
        probe ctx s_txn 8;
        Done "savepoint released")
  | S_rollback_to name -> (
      match List.assoc_opt name ctx.cat.Catalog.savepoints with
      | None ->
        probe ctx s_txn 11;
        Errors.fail (Errors.No_such_object ("savepoint", name))
      | Some snap ->
        Catalog.restore_snapshot ctx.cat snap;
        probe ctx s_txn 10;
        set_flag ctx "rolled_back_to_savepoint";
        Done "rolled back to savepoint")
  | S_set_transaction iso ->
    ctx.cat.Catalog.iso <- iso;
    probe ctx s_txn
      (12
       + match iso with
       | Read_committed -> 0
       | Repeatable_read -> 1
       | Serializable -> 2);
    Done "isolation set"
  | S_lock_tables locks ->
    List.iter (fun (t, _) -> ignore (Catalog.find_table ctx.cat t)) locks;
    Hashtbl.reset ctx.cat.Catalog.locks;
    List.iter
      (fun (t, m) -> Hashtbl.replace ctx.cat.Catalog.locks t m)
      locks;
    probe ctx s_txn (16 + min 3 (List.length locks));
    set_flag ctx "locked_now";
    Done "locked"
  | S_unlock_tables ->
    probe ctx s_txn
      (if Hashtbl.length ctx.cat.Catalog.locks = 0 then 21 else 20);
    Hashtbl.reset ctx.cat.Catalog.locks;
    Done "unlocked"
  (* ---------------- session / utility ---------------- *)
  | S_set_var { global; name; value } ->
    let tbl =
      if global then ctx.cat.Catalog.global_vars
      else ctx.cat.Catalog.session_vars
    in
    Hashtbl.replace tbl name (Value.of_literal value);
    probe ctx s_util ((Hashtbl.hash name land 15) lor if global then 16 else 0);
    Done "variable set"
  | S_reset_var name ->
    probe ctx s_util
      (32 lor if Hashtbl.mem ctx.cat.Catalog.session_vars name then 1 else 0);
    Hashtbl.remove ctx.cat.Catalog.session_vars name;
    Done "variable reset"
  | S_set_names charset ->
    Hashtbl.replace ctx.cat.Catalog.session_vars "names"
      (Value.Text charset);
    probe ctx s_util 34;
    Done "names set"
  | S_pragma { name; value } ->
    (match value with
     | Some l ->
       Hashtbl.replace ctx.cat.Catalog.session_vars ("pragma_" ^ name)
         (Value.of_literal l)
     | None -> ());
    probe ctx s_util (40 lor (Hashtbl.hash name land 7));
    Done "pragma"
  | S_vacuum target ->
    (match target with
     | Some t -> ignore (Catalog.find_table ctx.cat t)
     | None -> ());
    set_flag ctx "vacuumed";
    probe ctx s_util (48 lor if target = None then 1 else 0);
    Done "vacuumed"
  | S_analyze target ->
    (match target with
     | Some t -> ignore (Catalog.find_table ctx.cat t)
     | None -> ());
    Hashtbl.replace ctx.cat.Catalog.global_vars "__analyzed"
      (Value.Bool true);
    set_flag ctx "analyzed_now";
    probe ctx s_util (50 lor if target = None then 1 else 0);
    Done "analyzed"
  | S_reindex target ->
    (match target with
     | Some t ->
       ignore (Catalog.find_table ctx.cat t);
       rebuild_table_indexes ctx t
     | None -> Catalog.rebuild_indexes ctx.cat);
    probe ctx s_util (52 lor if target = None then 1 else 0);
    Done "reindexed"
  | S_checkpoint ->
    probe ctx s_util (54 lor if ctx.cat.Catalog.in_txn then 1 else 0);
    Done "checkpoint"
  | S_flush what ->
    probe ctx s_util
      (56
       + match what with Fl_tables -> 0 | Fl_status -> 1 | Fl_privileges -> 2);
    Done "flushed"
  | S_optimize t ->
    ignore (Catalog.find_table ctx.cat t);
    probe ctx s_util 60;
    Rows ([ "Table"; "Msg_text" ], [ [| Value.Text t; Value.Text "OK" |] ])
  | S_check_table t ->
    let table = Catalog.find_table ctx.cat t in
    probe ctx s_util (62 lor if Table.row_count table = 0 then 1 else 0);
    Rows ([ "Table"; "Msg_text" ], [ [| Value.Text t; Value.Text "OK" |] ])
  | S_repair t ->
    ignore (Catalog.find_table ctx.cat t);
    set_flag ctx "repaired";
    probe ctx s_util 64;
    Rows ([ "Table"; "Msg_text" ], [ [| Value.Text t; Value.Text "OK" |] ])
  | S_notify { channel; payload } -> do_notify ctx channel payload
  | S_listen channel ->
    if not (List.mem channel ctx.cat.Catalog.listening) then
      ctx.cat.Catalog.listening <- channel :: ctx.cat.Catalog.listening;
    probe ctx s_notify 4;
    Done "listening"
  | S_unlisten channel ->
    probe ctx s_notify
      (if List.mem channel ctx.cat.Catalog.listening then 5 else 6);
    ctx.cat.Catalog.listening <-
      List.filter
        (fun c -> not (String.equal c channel))
        ctx.cat.Catalog.listening;
    Done "unlistened"
  | S_discard what ->
    (match what with
     | Disc_all ->
       let temps =
         Hashtbl.fold
           (fun n t acc -> if Table.is_temp t then n :: acc else acc)
           ctx.cat.Catalog.tables []
       in
       List.iter (Hashtbl.remove ctx.cat.Catalog.tables) temps;
       Hashtbl.reset ctx.cat.Catalog.prepared;
       ctx.cat.Catalog.listening <- [];
       probe ctx s_util (70 lor if temps <> [] then 1 else 0);
       set_flag ctx "discarded_all"
     | Disc_temp ->
       let temps =
         Hashtbl.fold
           (fun n t acc -> if Table.is_temp t then n :: acc else acc)
           ctx.cat.Catalog.tables []
       in
       List.iter (Hashtbl.remove ctx.cat.Catalog.tables) temps;
       probe ctx s_util (72 lor if temps <> [] then 1 else 0)
     | Disc_plans -> probe ctx s_util 74);
    Done "discarded"
  | S_prepare { name; stmt = inner } ->
    (match inner with
     | S_prepare _ | S_execute _ ->
       probe ctx s_prepare 3;
       Errors.fail (Errors.Semantic "nested PREPARE")
     | _ -> ());
    Hashtbl.replace ctx.cat.Catalog.prepared name inner;
    probe ctx s_prepare 0;
    Done "prepared"
  | S_execute name -> (
      match Hashtbl.find_opt ctx.cat.Catalog.prepared name with
      | None ->
        probe ctx s_prepare 2;
        Errors.fail (Errors.No_such_object ("prepared statement", name))
      | Some inner ->
        probe ctx s_prepare 1;
        if ctx.trigger_depth > ctx.limits.Limits.max_trigger_depth then
          Errors.fail (Errors.Limit_exceeded "execute recursion")
        else begin
          ctx.trigger_depth <- ctx.trigger_depth + 1;
          let finally () = ctx.trigger_depth <- ctx.trigger_depth - 1 in
          match exec ctx inner with
          | r ->
            finally ();
            r
          | exception e ->
            finally ();
            raise e
        end)
  | S_deallocate name ->
    if not (Hashtbl.mem ctx.cat.Catalog.prepared name) then begin
      probe ctx s_prepare 5;
      Errors.fail (Errors.No_such_object ("prepared statement", name))
    end;
    Hashtbl.remove ctx.cat.Catalog.prepared name;
    probe ctx s_prepare 4;
    Done "deallocated"
  | S_use db ->
    if not (Hashtbl.mem ctx.cat.Catalog.databases db) then begin
      probe ctx s_util 81;
      Errors.fail (Errors.No_such_object ("database", db))
    end;
    ctx.cat.Catalog.current_db <- db;
    probe ctx s_util 80;
    Done "database changed"
  | S_do e ->
    let v = eval_scalar ctx e in
    probe ctx s_util (84 lor Hashtbl.hash (Value.type_name v) land 3);
    Done "do"
  | S_handler_open t ->
    ignore (Catalog.find_table ctx.cat t);
    if Hashtbl.mem ctx.cat.Catalog.handlers t then begin
      probe ctx s_handler 1;
      Errors.fail (Errors.Semantic "handler already open")
    end;
    Hashtbl.replace ctx.cat.Catalog.handlers t (-1);
    probe ctx s_handler 0;
    Done "handler open"
  | S_handler_read { table; dir } -> (
      match Hashtbl.find_opt ctx.cat.Catalog.handlers table with
      | None ->
        probe ctx s_handler 3;
        Errors.fail (Errors.Semantic "handler not open")
      | Some pos ->
        let tbl = Catalog.find_table ctx.cat table in
        let next = match dir with H_first -> 0 | H_next -> pos + 1 in
        Hashtbl.replace ctx.cat.Catalog.handlers table next;
        let rows = Table.to_rows tbl in
        probe ctx s_handler
          (if next < List.length rows then 4 else 5);
        (match List.nth_opt rows next with
         | Some (_, row) ->
           Rows
             ( Array.to_list
                 (Array.map (fun c -> c.Table.c_name) (Table.cols tbl)),
               [ row ] )
         | None ->
           Rows
             ( Array.to_list
                 (Array.map (fun c -> c.Table.c_name) (Table.cols tbl)),
               [] )))
  | S_handler_close t ->
    if not (Hashtbl.mem ctx.cat.Catalog.handlers t) then begin
      probe ctx s_handler 7;
      Errors.fail (Errors.Semantic "handler not open")
    end;
    Hashtbl.remove ctx.cat.Catalog.handlers t;
    probe ctx s_handler 6;
    Done "handler closed"
  | S_alter_system param ->
    Hashtbl.replace ctx.cat.Catalog.global_vars ("__system_" ^ param)
      (Value.Bool true);
    set_flag ctx "system_altered";
    probe ctx s_util (90 lor (Hashtbl.hash param land 7));
    Done "system altered"
  | S_refresh_matview name -> (
      match Hashtbl.find_opt ctx.cat.Catalog.views name with
      | Some v when v.Catalog.v_materialized ->
        v.Catalog.v_cache <- Some (run_query ctx v.Catalog.v_query);
        set_flag ctx "matview_refreshed";
        probe ctx s_view 16;
        Done "materialized view refreshed"
      | Some _ ->
        probe ctx s_view 17;
        Errors.fail (Errors.Semantic "not a materialized view")
      | None ->
        probe ctx s_view 18;
        Errors.fail (Errors.No_such_object ("materialized view", name)))
  | S_kill n ->
    probe ctx s_util (96 lor if n = 0 then 1 else 0);
    if n = 0 then Errors.fail (Errors.Semantic "unknown thread id 0");
    Done "killed"
  | S_cluster target ->
    let do_one name =
      let table = Catalog.find_table ctx.cat name in
      let pk_pos =
        let cols = Table.cols table in
        let rec find i =
          if i >= Array.length cols then None
          else if cols.(i).Table.c_primary then Some i
          else find (i + 1)
        in
        find 0
      in
      match pk_pos with
      | None -> probe ctx s_util 100
      | Some p ->
        let rows = List.map snd (Table.to_rows table) in
        let sorted =
          List.stable_sort
            (fun a b -> Value.compare_total a.(p) b.(p))
            rows
        in
        ignore (Table.truncate table);
        List.iter (fun r -> ignore (Table.insert table r)) sorted;
        rebuild_table_indexes ctx name;
        probe ctx s_util 101;
        set_flag ctx "clustered"
    in
    (match target with
     | Some t -> do_one t
     | None ->
       Hashtbl.iter (fun n _ -> do_one n) (Hashtbl.copy ctx.cat.Catalog.tables));
    Done "clustered"

and do_notify ctx channel payload =
  let delivered = List.mem channel ctx.cat.Catalog.listening in
  ctx.cat.Catalog.notify_queue <-
    (channel, payload) :: ctx.cat.Catalog.notify_queue;
  probe ctx s_notify (if delivered then 1 else 0);
  if delivered then set_flag ctx "notify_delivered";
  set_flag ctx "notified";
  Done "notified"

and rename_refs ctx old_name new_name =
  let remap t = if String.equal t old_name then new_name else t in
  let specs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.cat.Catalog.indexes []
  in
  List.iter
    (fun (k, (spec : Catalog.index_spec)) ->
       if String.equal spec.x_table old_name then
         Hashtbl.replace ctx.cat.Catalog.indexes k
           { spec with x_table = new_name })
    specs;
  let trs =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.cat.Catalog.triggers []
  in
  List.iter
    (fun (k, (tr : Catalog.trigger)) ->
       if String.equal tr.tr_table old_name then
         Hashtbl.replace ctx.cat.Catalog.triggers k
           { tr with tr_table = new_name })
    trs;
  let rls =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) ctx.cat.Catalog.rules []
  in
  List.iter
    (fun (k, (r : Catalog.rule)) ->
       if String.equal r.r_table old_name then
         Hashtbl.replace ctx.cat.Catalog.rules k
           { r with r_table = remap r.r_table })
    rls

and exec_drop ctx target if_exists =
  let missing kind name =
    probe ctx s_ddl 30;
    if if_exists then Done (kind ^ " does not exist, skipped")
    else Errors.fail (Errors.No_such_object (kind, name))
  in
  match target with
  | D_table name ->
    if not (Hashtbl.mem ctx.cat.Catalog.tables name) then
      missing "table" name
    else begin
      Hashtbl.remove ctx.cat.Catalog.tables name;
      (* cascade: indexes, triggers, rules on the table *)
      let cascade = ref 0 in
      let idx =
        Hashtbl.fold
          (fun k (s : Catalog.index_spec) acc ->
             if String.equal s.x_table name then k :: acc else acc)
          ctx.cat.Catalog.indexes []
      in
      List.iter
        (fun k ->
           incr cascade;
           Hashtbl.remove ctx.cat.Catalog.indexes k)
        idx;
      let trs =
        Hashtbl.fold
          (fun k (t : Catalog.trigger) acc ->
             if String.equal t.tr_table name then k :: acc else acc)
          ctx.cat.Catalog.triggers []
      in
      List.iter
        (fun k ->
           incr cascade;
           Hashtbl.remove ctx.cat.Catalog.triggers k)
        trs;
      let rls =
        Hashtbl.fold
          (fun k (r : Catalog.rule) acc ->
             if String.equal r.r_table name then k :: acc else acc)
          ctx.cat.Catalog.rules []
      in
      List.iter
        (fun k ->
           incr cascade;
           Hashtbl.remove ctx.cat.Catalog.rules k)
        rls;
      Hashtbl.remove ctx.cat.Catalog.handlers name;
      Hashtbl.remove ctx.cat.Catalog.locks name;
      probe ctx s_ddl (31 + min 2 !cascade);
      if !cascade > 0 then set_flag ctx "drop_cascaded";
      Done "table dropped"
    end
  | D_index name ->
    if not (Hashtbl.mem ctx.cat.Catalog.indexes name) then
      missing "index" name
    else begin
      Hashtbl.remove ctx.cat.Catalog.indexes name;
      probe ctx s_ddl 34;
      Done "index dropped"
    end
  | D_view name ->
    if not (Hashtbl.mem ctx.cat.Catalog.views name) then missing "view" name
    else begin
      Hashtbl.remove ctx.cat.Catalog.views name;
      probe ctx s_ddl 35;
      Done "view dropped"
    end
  | D_trigger name ->
    if not (Hashtbl.mem ctx.cat.Catalog.triggers name) then
      missing "trigger" name
    else begin
      Hashtbl.remove ctx.cat.Catalog.triggers name;
      probe ctx s_ddl 36;
      Done "trigger dropped"
    end
  | D_rule (name, _table) ->
    if not (Hashtbl.mem ctx.cat.Catalog.rules name) then missing "rule" name
    else begin
      Hashtbl.remove ctx.cat.Catalog.rules name;
      probe ctx s_ddl 37;
      Done "rule dropped"
    end
  | D_sequence name ->
    if not (Hashtbl.mem ctx.cat.Catalog.sequences name) then
      missing "sequence" name
    else begin
      Hashtbl.remove ctx.cat.Catalog.sequences name;
      probe ctx s_ddl 38;
      Done "sequence dropped"
    end
  | D_schema name ->
    if not (Hashtbl.mem ctx.cat.Catalog.schemas name) then
      missing "schema" name
    else begin
      Hashtbl.remove ctx.cat.Catalog.schemas name;
      probe ctx s_ddl 39;
      Done "schema dropped"
    end
  | D_database name ->
    if not (Hashtbl.mem ctx.cat.Catalog.databases name) then
      missing "database" name
    else if String.equal name ctx.cat.Catalog.current_db then begin
      probe ctx s_ddl 41;
      Errors.fail (Errors.Semantic "cannot drop the current database")
    end
    else begin
      Hashtbl.remove ctx.cat.Catalog.databases name;
      probe ctx s_ddl 40;
      Done "database dropped"
    end
  | D_user name ->
    if not (Hashtbl.mem ctx.cat.Catalog.users name) then missing "user" name
    else if String.equal name "root" then begin
      probe ctx s_dcl 10;
      Errors.fail (Errors.Semantic "cannot drop root")
    end
    else begin
      Hashtbl.remove ctx.cat.Catalog.users name;
      if String.equal ctx.cat.Catalog.current_user name then
        ctx.cat.Catalog.current_user <- "root";
      probe ctx s_dcl 9;
      Done "user dropped"
    end

and exec_alter_table ctx table_name action =
  let table = Catalog.find_table ctx.cat table_name in
  check_lock ctx table_name `Write;
  (match action with
   | Add_column def ->
     let col = Table.col_of_def def in
     if Table.col_index table col.Table.c_name <> None then begin
       probe ctx s_ddl 45;
       Errors.fail (Errors.Duplicate_object ("column", col.Table.c_name))
     end;
     if
       col.Table.c_not_null && col.Table.c_default = None
       && Table.row_count table > 0
     then begin
       probe ctx s_ddl 46;
       Errors.fail
         (Errors.Constraint_violation
            "cannot add NOT NULL column without default to non-empty table")
     end;
     Table.add_column table col;
     probe ctx s_ddl 44
   | Drop_column name -> (
       match Table.col_index table name with
       | None ->
         probe ctx s_ddl 48;
         Errors.fail (Errors.No_such_column name)
       | Some pos ->
         if Table.arity table = 1 then begin
           probe ctx s_ddl 49;
           Errors.fail (Errors.Semantic "cannot drop the only column")
         end;
         (* drop indexes that use the column *)
         let doomed =
           Hashtbl.fold
             (fun k (s : Catalog.index_spec) acc ->
                if
                  String.equal s.x_table table_name
                  && List.mem name s.x_cols
                then k :: acc
                else acc)
             ctx.cat.Catalog.indexes []
         in
         List.iter (Hashtbl.remove ctx.cat.Catalog.indexes) doomed;
         if doomed <> [] then set_flag ctx "index_dropped_with_column";
         Table.drop_column table pos;
         probe ctx s_ddl 47)
   | Rename_to new_name ->
     if Catalog.name_in_use ctx.cat new_name then begin
       probe ctx s_ddl 51;
       Errors.fail (Errors.Duplicate_object ("table", new_name))
     end;
     Hashtbl.remove ctx.cat.Catalog.tables table_name;
     Table.set_name table new_name;
     Hashtbl.replace ctx.cat.Catalog.tables new_name table;
     rename_refs ctx table_name new_name;
     probe ctx s_ddl 50
   | Rename_column (old_c, new_c) -> (
       match Table.col_index table old_c with
       | None ->
         probe ctx s_ddl 53;
         Errors.fail (Errors.No_such_column old_c)
       | Some pos ->
         if Table.col_index table new_c <> None then begin
           probe ctx s_ddl 54;
           Errors.fail (Errors.Duplicate_object ("column", new_c))
         end;
         Table.rename_column table pos new_c;
         probe ctx s_ddl 52)
   | Alter_column_type (col, dt) -> (
       match Table.col_index table col with
       | None ->
         probe ctx s_ddl 56;
         Errors.fail (Errors.No_such_column col)
       | Some pos ->
         Table.change_column_type table pos dt;
         probe ctx s_ddl 55;
         set_flag ctx "column_retyped"));
  rebuild_table_indexes ctx table_name;
  Done "table altered"

and fire_triggers ctx table_name event ~timing =
  let trs = Catalog.triggers_on ctx.cat table_name event in
  let trs =
    List.filter (fun (t : Catalog.trigger) -> t.tr_timing = timing) trs
  in
  if trs <> [] then begin
    if ctx.trigger_depth >= ctx.limits.Limits.max_trigger_depth then begin
      probe ctx s_trigger 15;
      set_flag ctx "trigger_depth_limit"
    end
    else begin
      ctx.trigger_depth <- ctx.trigger_depth + 1;
      let finally () = ctx.trigger_depth <- ctx.trigger_depth - 1 in
      (try
         List.iter
           (fun (t : Catalog.trigger) ->
              probe ctx s_trigger
                ((match timing with Before -> 0 | After -> 8)
                 lor (ctx.trigger_depth land 7));
              set_flag ctx "trigger_fired";
              List.iter (fun s -> ignore (exec ctx s)) t.tr_body)
           trs
       with e ->
         finally ();
         raise e);
      finally ()
    end
  end

and exec_insert ctx ~replace ~in_with (i : insert) =
  let table_name = i.i_table in
  match
    if Hashtbl.mem ctx.cat.Catalog.tables table_name then
      Rewriter.rewrite_dml ctx.cat ~table:table_name ~event:Ev_insert
    else Rewriter.No_rule
  with
  | Rewriter.No_rule -> exec_plain_insert ctx ~replace ~in_with i
  | decision -> apply_rule ctx ~in_with decision

and apply_rule ctx ~in_with decision =
  probe ctx s_rule
    ((Rewriter.decision_tag decision * 4) lor if in_with then 1 else 0);
  set_flag ctx "rule_rewrote";
  if in_with then set_flag ctx "dml_in_with_rewritten";
  match decision with
  | Rewriter.No_rule -> Affected 0
  | Rewriter.Instead_nothing _ -> Affected 0
  | Rewriter.Instead_notify (_, chan) ->
    if in_with then set_flag ctx "notify_rewrite_in_with";
    ignore (do_notify ctx chan None);
    Affected 0
  | Rewriter.Instead_stmt (_, s) ->
    if
      (* test-only planted rewriter bug: the substituted statement is
         dropped instead of executed *)
      Profile.quirk ctx.profile "rule_rewrite_noop"
    then Affected 0
    else if ctx.trigger_depth >= ctx.limits.Limits.max_trigger_depth
    then begin
      probe ctx s_rule 15;
      Affected 0
    end
    else begin
      ctx.trigger_depth <- ctx.trigger_depth + 1;
      let finally () = ctx.trigger_depth <- ctx.trigger_depth - 1 in
      match exec ctx s with
      | r ->
        finally ();
        (match r with Affected n -> Affected n | _ -> Affected 0)
      | exception e ->
        finally ();
        raise e
    end

and exec_plain_insert ctx ~replace ~in_with (i : insert) =
  let table = Catalog.find_table ctx.cat i.i_table in
  check_lock ctx i.i_table `Write;
  let cols = Table.cols table in
  let arity = Array.length cols in
  let positions =
    if i.i_cols = [] then List.init arity (fun x -> x)
    else
      List.map
        (fun c ->
           match Table.col_index table c with
           | Some p -> p
           | None ->
             probe ctx s_insert 14;
             Errors.fail (Errors.No_such_column c))
        i.i_cols
  in
  let src_rows =
    match i.i_source with
    | Src_values rows ->
      List.map
        (fun row -> List.map (fun e -> eval_scalar ctx e) row)
        rows
    | Src_query q ->
      probe ctx s_insert 12;
      set_flag ctx "insert_select";
      List.map Array.to_list (run_query ctx q)
  in
  let inserted = ref 0 in
  let skip_row reason_key =
    probe ctx s_constraint reason_key;
    set_flag ctx "row_skipped"
  in
  List.iter
    (fun src ->
       if List.length src <> List.length positions then begin
         if i.i_ignore then skip_row 15
         else begin
           probe ctx s_insert 13;
           Errors.fail
             (Errors.Semantic "INSERT value count does not match columns")
         end
       end
       else begin
         (* assemble the full row with defaults *)
         let row =
           Array.init arity (fun p ->
               match cols.(p).Table.c_default with
               | Some d -> d
               | None -> Value.Null)
         in
         let coerce_err = ref None in
         List.iteri
           (fun k v ->
              let p = List.nth positions k in
              match Value.coerce v cols.(p).Table.c_type with
              | Ok v ->
                if cols.(p).Table.c_zerofill then
                  probe ctx s_insert 20;
                row.(p) <- v
              | Error msg -> coerce_err := Some msg)
           src;
         match !coerce_err with
         | Some msg ->
           if i.i_ignore then skip_row 16
           else begin
             probe ctx s_insert 17;
             Errors.fail (Errors.Type_error msg)
           end
         | None ->
           (* NOT NULL *)
           let nn_violation =
             Array.exists
               (fun p ->
                  cols.(p).Table.c_not_null && row.(p) = Value.Null)
               (Array.init arity (fun x -> x))
           in
           if nn_violation then begin
             if i.i_ignore then skip_row 1
             else begin
               probe ctx s_constraint 0;
               set_flag ctx "not_null_violated";
               Errors.fail
                 (Errors.Constraint_violation "NOT NULL constraint")
             end
           end
           else begin
             let conflicts =
               find_conflicts ctx i.i_table table row ~exclude:[]
             in
             if conflicts <> [] then begin
               if replace then begin
                 probe ctx s_constraint 4;
                 set_flag ctx "replace_displaced";
                 ignore
                   (Table.delete_rows table (fun id -> List.mem id conflicts));
                 fire_triggers ctx i.i_table Ev_delete ~timing:After;
                 do_store ctx table i.i_table row inserted ~in_with
               end
               else if i.i_ignore then skip_row 2
               else begin
                 probe ctx s_constraint 3;
                 set_flag ctx "unique_violated";
                 Errors.fail
                   (Errors.Constraint_violation "UNIQUE constraint")
               end
             end
             else do_store ctx table i.i_table row inserted ~in_with
           end
       end)
    src_rows;
  rebuild_table_indexes ctx i.i_table;
  (* non-INSTEAD rules run after the original statement *)
  List.iter
    (fun (r : Catalog.rule) ->
       probe ctx s_rule 14;
       match r.r_action with
       | Ra_nothing -> ()
       | Ra_notify chan -> ignore (do_notify ctx chan None)
       | Ra_stmt s ->
         if ctx.trigger_depth < ctx.limits.Limits.max_trigger_depth then begin
           ctx.trigger_depth <- ctx.trigger_depth + 1;
           (try ignore (exec ctx s)
            with e ->
              ctx.trigger_depth <- ctx.trigger_depth - 1;
              raise e);
           ctx.trigger_depth <- ctx.trigger_depth - 1
         end)
    (Rewriter.also_rules ctx.cat ~table:i.i_table ~event:Ev_insert);
  probe ctx s_insert (min 7 !inserted);
  Affected !inserted

and do_store ctx table table_name row inserted ~in_with =
  if Table.row_count table >= ctx.limits.Limits.max_rows_per_table then begin
    probe ctx s_insert 21;
    Errors.fail (Errors.Limit_exceeded "table rows")
  end;
  fire_triggers ctx table_name Ev_insert ~timing:Before;
  ignore (Table.insert table row);
  incr inserted;
  if in_with then set_flag ctx "dml_in_with_executed";
  fire_triggers ctx table_name Ev_insert ~timing:After

and exec_update ctx ~in_with (u : update) =
  match
    if Hashtbl.mem ctx.cat.Catalog.tables u.u_table then
      Rewriter.rewrite_dml ctx.cat ~table:u.u_table ~event:Ev_update
    else Rewriter.No_rule
  with
  | Rewriter.No_rule ->
    let table = Catalog.find_table ctx.cat u.u_table in
    check_lock ctx u.u_table `Write;
    let cols = Table.cols table in
    let set_positions =
      List.map
        (fun (c, e) ->
           match Table.col_index table c with
           | Some p -> (p, e)
           | None ->
             probe ctx s_update 14;
             Errors.fail (Errors.No_such_column c))
        u.u_sets
    in
    let col_names = Array.map (fun c -> c.Table.c_name) cols in
    let matching =
      List.filter
        (fun (_, row) ->
           match u.u_where with
           | None -> true
           | Some w ->
             let env =
               row_env ctx
                 [ { b_alias = u.u_table; b_cols = col_names; b_vals = row } ]
             in
             Expr_eval.eval_bool env w)
        (Table.to_rows table)
    in
    let matching =
      match u.u_limit with
      | None -> matching
      | Some n ->
        probe ctx s_update 12;
        List.filteri (fun i _ -> i < n) matching
    in
    probe ctx s_update (bucket (List.length matching));
    let updated = ref 0 in
    List.iter
      (fun (rowid, row) ->
         let env =
           row_env ctx
             [ { b_alias = u.u_table; b_cols = col_names; b_vals = row } ]
         in
         let row' = Array.copy row in
         List.iter
           (fun (p, e) ->
              let v = Expr_eval.eval env e in
              match Value.coerce v cols.(p).Table.c_type with
              | Ok v -> row'.(p) <- v
              | Error msg ->
                probe ctx s_update 13;
                Errors.fail (Errors.Type_error msg))
           set_positions;
         let nn =
           Array.exists
             (fun p -> cols.(p).Table.c_not_null && row'.(p) = Value.Null)
             (Array.init (Array.length cols) (fun x -> x))
         in
         if nn then begin
           probe ctx s_constraint 5;
           set_flag ctx "not_null_violated";
           Errors.fail (Errors.Constraint_violation "NOT NULL constraint")
         end;
         let conflicts =
           find_conflicts ctx u.u_table table row' ~exclude:[ rowid ]
         in
         if conflicts <> [] then begin
           probe ctx s_constraint 6;
           set_flag ctx "unique_violated";
           Errors.fail (Errors.Constraint_violation "UNIQUE constraint")
         end;
         fire_triggers ctx u.u_table Ev_update ~timing:Before;
         Table.update_row table rowid row';
         incr updated;
         if in_with then set_flag ctx "dml_in_with_executed";
         fire_triggers ctx u.u_table Ev_update ~timing:After)
      matching;
    rebuild_table_indexes ctx u.u_table;
    Affected !updated
  | decision -> apply_rule ctx ~in_with decision

and exec_delete ctx ~in_with (d : delete) =
  match
    if Hashtbl.mem ctx.cat.Catalog.tables d.d_table then
      Rewriter.rewrite_dml ctx.cat ~table:d.d_table ~event:Ev_delete
    else Rewriter.No_rule
  with
  | Rewriter.No_rule ->
    let table = Catalog.find_table ctx.cat d.d_table in
    check_lock ctx d.d_table `Write;
    let col_names = Array.map (fun c -> c.Table.c_name) (Table.cols table) in
    let matching =
      List.filter
        (fun (_, row) ->
           match d.d_where with
           | None -> true
           | Some w ->
             let env =
               row_env ctx
                 [ { b_alias = d.d_table; b_cols = col_names; b_vals = row } ]
             in
             Expr_eval.eval_bool env w)
        (Table.to_rows table)
    in
    let matching =
      match d.d_limit with
      | None -> matching
      | Some n ->
        probe ctx s_delete 12;
        List.filteri (fun i _ -> i < n) matching
    in
    probe ctx s_delete (bucket (List.length matching));
    let ids = List.map fst matching in
    if ids <> [] then fire_triggers ctx d.d_table Ev_delete ~timing:Before;
    let n = Table.delete_rows table (fun id -> List.mem id ids) in
    if n > 0 then begin
      if in_with then set_flag ctx "dml_in_with_executed";
      fire_triggers ctx d.d_table Ev_delete ~timing:After
    end;
    rebuild_table_indexes ctx d.d_table;
    Affected n
  | decision -> apply_rule ctx ~in_with decision

and exec_with ctx ctes body =
  let saved = ctx.ctes in
  let restore () = ctx.ctes <- saved in
  probe ctx s_cte (16 + min 3 (List.length ctes));
  try
    List.iter
      (fun { cte_name; cte_body } ->
         let rel =
           match cte_body with
           | W_query q ->
             { cr_headers = headers_of_query ctx q; cr_rows = run_query ctx q }
           | W_insert i ->
             set_flag ctx "dml_in_with";
             ignore (exec_insert ctx ~replace:false ~in_with:true i);
             { cr_headers = []; cr_rows = [] }
           | W_update u ->
             set_flag ctx "dml_in_with";
             ignore (exec_update ctx ~in_with:true u);
             { cr_headers = []; cr_rows = [] }
           | W_delete d ->
             set_flag ctx "dml_in_with";
             ignore (exec_delete ctx ~in_with:true d);
             { cr_headers = []; cr_rows = [] }
         in
         ctx.ctes <- (cte_name, rel) :: ctx.ctes)
      ctes;
    let result =
      match body with
      | W_query q -> Rows (headers_of_query ctx q, run_query ctx q)
      | W_insert i ->
        set_flag ctx "dml_in_with";
        exec_insert ctx ~replace:false ~in_with:true i
      | W_update u ->
        set_flag ctx "dml_in_with";
        exec_update ctx ~in_with:true u
      | W_delete d ->
        set_flag ctx "dml_in_with";
        exec_delete ctx ~in_with:true d
    in
    restore ();
    result
  with e ->
    restore ();
    raise e
