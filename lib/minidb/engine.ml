open Sqlcore

type t = {
  ctx : Executor.ctx;
  profile : Profile.t;
  limits : Limits.t;
  cov : Coverage.Bitmap.t;
  metrics : Telemetry.Registry.t option;
  mutable window : Stmt_type.t list;  (* most recent last *)
  mutable stmt_count : int;
}

type stmt_status =
  | Ok_result of Executor.result
  | Sql_failed of Errors.t

type run_stats = {
  rs_executed : int;
  rs_errors : int;
  rs_crash : Fault.crash option;
  rs_cost : int;
  rs_rows_scanned : int;
}

let window_cap = 8

let s_gate = Coverage.Sites.register "engine.gate"
let s_seqpair = Coverage.Sites.register "engine.type_transition"
let s_sqlerr = Coverage.Sites.register "engine.sql_error"

let create ?(limits = Limits.default) ?metrics ~profile ~cov () =
  let cat = Catalog.create () in
  { ctx = Executor.create_ctx ~cat ~profile ~limits ~cov;
    profile; limits; cov; metrics; window = []; stmt_count = 0 }

let profile t = t.profile

let catalog t = Executor.catalog t.ctx

let window t = t.window

let push_window t ty =
  let w = t.window @ [ ty ] in
  let drop = max 0 (List.length w - window_cap) in
  let rec chop n l = if n = 0 then l else chop (n - 1) (List.tl l) in
  t.window <- chop drop w

let exec_stmt t stmt =
  let ty = Ast.type_of_stmt stmt in
  if not (Profile.supports t.profile ty) then begin
    Coverage.Bitmap.probe t.cov ~site:s_gate ~key:(Stmt_type.to_index ty);
    Sql_failed (Errors.Not_supported (Stmt_type.name ty))
  end
  else begin
    (* Order-sensitive transition coverage: real DBMS code executed for a
       statement depends on what ran before it (caches, catalog state,
       open transactions); this probe is the aggregate of that effect. *)
    (match t.window with
     | [] -> ()
     | w ->
       (* Hash the pair into a compressed key space: real DBMSs do not
          have a branch per ordered statement-type pair; order
          sensitivity shows up through shared state, so distinct pairs
          partially alias, like AFL edge collisions. *)
       let prev = List.nth w (List.length w - 1) in
       let pair =
         (Stmt_type.to_index prev * Stmt_type.count) + Stmt_type.to_index ty
       in
       let mixed = (pair * 0x9E3779B1) lxor (pair lsr 7) in
       Coverage.Bitmap.probe t.cov ~site:s_seqpair ~key:(mixed land 0x1ff));
    Executor.reset_transient t.ctx;
    push_window t ty;
    let status =
      match Executor.exec t.ctx stmt with
      | result -> Ok_result result
      | exception Errors.Sql_error e ->
        Coverage.Bitmap.probe t.cov ~site:s_sqlerr
          ~key:(Hashtbl.hash (Errors.message e) land 0x3f);
        Sql_failed e
    in
    (* Injected-bug check runs over the updated window plus whatever state
       the statement left behind — crashes surface as exceptions even when
       the statement itself reported a SQL error first, like a heap
       corruption detected at the next safepoint. *)
    Fault.check (Profile.bugs t.profile)
      { Fault.window = t.window; stmt;
        state = (fun name -> Executor.state_pred t.ctx name) };
    status
  end

let run_testcase t tc =
  let executed = ref 0 in
  let errors = ref 0 in
  let cost = ref 0 in
  let crash = ref None in
  let rows0 = Executor.rows_scanned t.ctx in
  (try
     List.iter
       (fun stmt ->
          if t.stmt_count >= t.limits.Limits.max_statements then raise Exit;
          t.stmt_count <- t.stmt_count + 1;
          incr executed;
          cost := !cost + Ast_util.stmt_size stmt;
          match exec_stmt t stmt with
          | Ok_result _ -> ()
          | Sql_failed _ -> incr errors)
       tc
   with
   | Exit -> ()
   | Fault.Crashed c -> crash := Some c);
  let rows = Executor.rows_scanned t.ctx - rows0 in
  (match t.metrics with
   | None -> ()
   | Some m ->
     let count name by =
       if by > 0 then
         Telemetry.Registry.incr ~by (Telemetry.Registry.counter m name)
     in
     count "engine.statements_executed" !executed;
     count "engine.sql_errors" !errors;
     count "engine.rows_scanned" rows;
     count "engine.crashes" (if !crash = None then 0 else 1));
  { rs_executed = !executed; rs_errors = !errors; rs_crash = !crash;
    rs_cost = !cost; rs_rows_scanned = rows }

let set_plan_mode t mode = Executor.set_plan_mode t.ctx mode

let query_rows t q =
  match Executor.run_query t.ctx q with
  | rows -> Ok rows
  | exception Errors.Sql_error e -> Error e
