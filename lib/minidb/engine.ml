open Sqlcore

type t = {
  ctx : Executor.ctx;
  profile : Profile.t;
  limits : Limits.t;
  cov : Coverage.Bitmap.t;
  metrics : Telemetry.Registry.t option;
  mutable window : Stmt_type.t list;  (* most recent last *)
  mutable stmt_count : int;
  mutable fault_ext : (string -> bool option) option;
      (* cross-session fault predicates (server layer); [None] answers
         fall through to [Executor.state_pred] *)
}

type stmt_status =
  | Ok_result of Executor.result
  | Sql_failed of Errors.t

type run_stats = {
  rs_executed : int;
  rs_errors : int;
  rs_crash : Fault.crash option;
  rs_cost : int;
  rs_rows_scanned : int;
}

let window_cap = 8

let s_gate = Coverage.Sites.register "engine.gate"
let s_seqpair = Coverage.Sites.register "engine.type_transition"
let s_sqlerr = Coverage.Sites.register "engine.sql_error"

let create ?(limits = Limits.default) ?metrics ~profile ~cov () =
  let cat = Catalog.create () in
  { ctx = Executor.create_ctx ~cat ~profile ~limits ~cov;
    profile; limits; cov; metrics; window = []; stmt_count = 0;
    fault_ext = None }

let profile t = t.profile

let catalog t = Executor.catalog t.ctx

let window t = t.window

let set_window t w = t.window <- w

let set_fault_ext t f = t.fault_ext <- f

let state_pred t name =
  match t.fault_ext with
  | None -> Executor.state_pred t.ctx name
  | Some ext -> (
      match ext name with
      | Some b -> b
      | None -> Executor.state_pred t.ctx name)

let push_window t ty =
  let w = t.window @ [ ty ] in
  let drop = max 0 (List.length w - window_cap) in
  let rec chop n l = if n = 0 then l else chop (n - 1) (List.tl l) in
  t.window <- chop drop w

let exec_stmt t stmt =
  let ty = Ast.type_of_stmt stmt in
  if not (Profile.supports t.profile ty) then begin
    Coverage.Bitmap.probe t.cov ~site:s_gate ~key:(Stmt_type.to_index ty);
    Sql_failed (Errors.Not_supported (Stmt_type.name ty))
  end
  else begin
    (* Order-sensitive transition coverage: real DBMS code executed for a
       statement depends on what ran before it (caches, catalog state,
       open transactions); this probe is the aggregate of that effect. *)
    (match t.window with
     | [] -> ()
     | w ->
       (* Hash the pair into a compressed key space: real DBMSs do not
          have a branch per ordered statement-type pair; order
          sensitivity shows up through shared state, so distinct pairs
          partially alias, like AFL edge collisions. *)
       let prev = List.nth w (List.length w - 1) in
       let pair =
         (Stmt_type.to_index prev * Stmt_type.count) + Stmt_type.to_index ty
       in
       let mixed = (pair * 0x9E3779B1) lxor (pair lsr 7) in
       Coverage.Bitmap.probe t.cov ~site:s_seqpair ~key:(mixed land 0x1ff));
    Executor.reset_transient t.ctx;
    push_window t ty;
    let status =
      match Executor.exec t.ctx stmt with
      | result -> Ok_result result
      | exception Errors.Sql_error e ->
        Coverage.Bitmap.probe t.cov ~site:s_sqlerr
          ~key:(Hashtbl.hash (Errors.message e) land 0x3f);
        Sql_failed e
    in
    (* Injected-bug check runs over the updated window plus whatever state
       the statement left behind — crashes surface as exceptions even when
       the statement itself reported a SQL error first, like a heap
       corruption detected at the next safepoint. *)
    Fault.check (Profile.bugs t.profile)
      { Fault.window = t.window; stmt;
        state = (fun name -> state_pred t name) };
    status
  end

let empty_stats =
  { rs_executed = 0; rs_errors = 0; rs_crash = None; rs_cost = 0;
    rs_rows_scanned = 0 }

(* [carry] holds the stats of a prefix already replayed into this engine
   (by the harness's snapshot cache): the returned stats and the metric
   counters report prefix + suffix combined, exactly what one cold run
   of the full test case would have reported. [on_boundary n stats]
   fires after each completed, non-crashing statement ([n] = statements
   consumed from [tc] so far) — the snapshot cache captures entries
   there, so crashing statements are never cached as boundaries. *)
let run_testcase_from ?(carry = empty_stats) ?on_boundary t tc =
  let executed = ref carry.rs_executed in
  let errors = ref carry.rs_errors in
  let cost = ref carry.rs_cost in
  let crash = ref None in
  let consumed = ref 0 in
  let rows0 = Executor.rows_scanned t.ctx - carry.rs_rows_scanned in
  let stats () =
    { rs_executed = !executed; rs_errors = !errors; rs_crash = !crash;
      rs_cost = !cost; rs_rows_scanned = Executor.rows_scanned t.ctx - rows0 }
  in
  (try
     List.iter
       (fun stmt ->
          if t.stmt_count >= t.limits.Limits.max_statements then raise Exit;
          t.stmt_count <- t.stmt_count + 1;
          incr executed;
          cost := !cost + Ast_util.stmt_size stmt;
          (match exec_stmt t stmt with
           | Ok_result _ -> ()
           | Sql_failed _ -> incr errors);
          incr consumed;
          match on_boundary with
          | None -> ()
          | Some f -> f !consumed (stats ()))
       tc
   with
   | Exit -> ()
   | Fault.Crashed c -> crash := Some c);
  let res = stats () in
  (match t.metrics with
   | None -> ()
   | Some m ->
     let count name by =
       if by > 0 then
         Telemetry.Registry.incr ~by (Telemetry.Registry.counter m name)
     in
     count "engine.statements_executed" res.rs_executed;
     count "engine.sql_errors" res.rs_errors;
     count "engine.rows_scanned" res.rs_rows_scanned;
     count "engine.crashes" (if res.rs_crash = None then 0 else 1));
  res

let run_testcase t tc = run_testcase_from t tc

type snapshot = {
  sn_state : Executor.state;
  sn_window : Stmt_type.t list;  (* immutable list: safe to share *)
  sn_stmt_count : int;
  sn_profile : Profile.t;
  sn_limits : Limits.t;
}

let snapshot t =
  { sn_state = Executor.capture t.ctx;
    sn_window = t.window;
    sn_stmt_count = t.stmt_count;
    sn_profile = t.profile;
    sn_limits = t.limits }

let restore ?metrics snap ~cov () =
  { ctx = Executor.restore snap.sn_state ~cov;
    profile = snap.sn_profile;
    limits = snap.sn_limits;
    cov;
    metrics;
    window = snap.sn_window;
    stmt_count = snap.sn_stmt_count;
    fault_ext = None }

let snapshot_bytes snap =
  Executor.state_bytes snap.sn_state + (16 * List.length snap.sn_window) + 256

let set_plan_mode t mode = Executor.set_plan_mode t.ctx mode

let query_rows t q =
  match Executor.run_query t.ctx q with
  | rows -> Ok rows
  | exception Errors.Sql_error e -> Error e
