(** Statement execution — the interpreter for every statement type MiniDB
    understands.

    The executor is instrumented with {!Coverage.Bitmap.probe} calls at
    every semantic branch point (access-path choice, constraint outcomes,
    trigger/rule firing, value-type combinations, empty-vs-nonempty scans,
    ...). Probe keys mix in engine state, so identical statements executed
    after different SQL Type Sequences cover different cells — the
    behaviour the paper's fuzzing exploits.

    Recoverable problems raise {!Errors.Sql_error}; the engine catches
    them per-statement. Injected bugs are checked by {!Engine}, not
    here. *)

open Sqlcore

type result =
  | Rows of string list * Storage.Value.t array list
      (** header names and data rows *)
  | Affected of int
  | Done of string

type plan_mode =
  | Plan_auto       (** the planner's own choice ({!Planner.choose_access}) *)
  | Plan_force_seq  (** every base-table scan pinned to [Seq_scan] *)

type ctx

val set_plan_mode : ctx -> plan_mode -> unit
(** Override access-path selection for subsequent statements. The
    differential-plan oracle executes each SELECT once under
    [Plan_force_seq] (the semantic reference: a full scan filtered by
    WHERE) and once under [Plan_auto], and compares row multisets.
    Defaults to [Plan_auto]; fuzzing-loop executions never change it. *)

val create_ctx :
  cat:Catalog.t ->
  profile:Profile.t ->
  limits:Limits.t ->
  cov:Coverage.Bitmap.t ->
  ctx

val catalog : ctx -> Catalog.t

type state
(** Frozen copy of a context at a statement boundary: catalog deep copy,
    rows-scanned counter and plan mode. Per-statement transients (flags,
    CTE scope, recursion depths) are empty at boundaries and excluded. *)

val capture : ctx -> state
(** Snapshot the context. The result shares nothing mutable with the
    live context. Only valid at statement boundaries. *)

val restore : state -> cov:Coverage.Bitmap.t -> ctx
(** Build a fresh context from a snapshot, writing coverage into [cov].
    The snapshot's catalog is copied again (copy-on-write, O(#objects)),
    so one [state] can be restored any number of times; mutating a
    restored context never leaks back. *)

val state_bytes : state -> int
(** Incremental heap cost of the snapshot (see
    {!Catalog.approx_bytes}). O(#schema objects), row-independent. *)

val exec : ctx -> Ast.stmt -> result
(** Execute one statement. @raise Errors.Sql_error on recoverable
    errors. *)

val run_query : ctx -> Ast.query -> Storage.Value.t array list
(** Evaluate a query to its rows (exposed for the evaluator and tests). *)

val reset_transient : ctx -> unit
(** Clear per-statement flags; the engine calls this before each
    statement. *)

val rows_scanned : ctx -> int
(** Cumulative rows fetched from relations (base-table scans and
    subquery materialisations) over the context's lifetime — the
    engine's rows-scanned telemetry. *)

val set_flag : ctx -> string -> unit
(** Record a named per-statement event (consulted by fault triggers). *)

val state_pred : ctx -> string -> bool
(** Evaluate a named state predicate over catalog state and per-statement
    flags; this is what {!Fault.ctx.state} is wired to. Unknown names are
    [false]. *)
