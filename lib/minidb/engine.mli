(** The DBMS session façade the fuzzing harness drives.

    An engine is one fresh "server + connection": it owns a catalog,
    enforces the dialect profile (unsupported statement types are rejected
    at the gate, like a parser error), maintains the sliding window of
    executed statement types, and checks the profile's injected bugs after
    every statement — raising {!Fault.Crashed} like an ASan abort. *)

open Sqlcore

type t

type stmt_status =
  | Ok_result of Executor.result
  | Sql_failed of Errors.t
      (** statement rejected; execution continues *)

type run_stats = {
  rs_executed : int;        (** statements attempted *)
  rs_errors : int;          (** statements that failed with a SQL error *)
  rs_crash : Fault.crash option;  (** a bug fired; execution stopped *)
  rs_cost : int;            (** total AST size executed — a time proxy *)
  rs_rows_scanned : int;    (** rows fetched from relations *)
}

val create :
  ?limits:Limits.t ->
  ?metrics:Telemetry.Registry.t ->
  profile:Profile.t ->
  cov:Coverage.Bitmap.t ->
  unit ->
  t
(** [metrics], when given, receives the engine's telemetry counters
    ([engine.statements_executed], [engine.sql_errors],
    [engine.rows_scanned], [engine.crashes]) after each
    {!run_testcase}. *)

val profile : t -> Profile.t

val catalog : t -> Catalog.t

val window : t -> Stmt_type.t list
(** Recently executed statement types, oldest first. *)

val set_window : t -> Stmt_type.t list -> unit
(** Replace the sliding window wholesale. The server layer's session
    pool swaps windows on session context switches so the window tracks
    the {e session}, not the shared store — bug-registry triggers must
    never see another session's statement types. *)

val set_fault_ext : t -> (string -> bool option) option -> unit
(** Install (or clear) an external answerer for bug-registry state
    predicates. A [Some b] answer overrides {!Executor.state_pred};
    [None] falls through to it. The session pool uses this for
    cross-session predicates ([other_txn_dirty],
    [other_session_in_txn], [other_session_window]) that a
    single-session engine cannot express — with no hook installed those
    names keep answering [false], so single-session campaigns are
    byte-identical to before the server layer existed. *)

val exec_stmt : t -> Ast.stmt -> stmt_status
(** Execute one statement; afterwards evaluate the bug registry.
    @raise Fault.Crashed when an injected bug's trigger matches. *)

val run_testcase : t -> Ast.testcase -> run_stats
(** Execute a whole test case, statement by statement, stopping at the
    first crash. Never raises. *)

val run_testcase_from :
  ?carry:run_stats ->
  ?on_boundary:(int -> run_stats -> unit) ->
  t ->
  Ast.testcase ->
  run_stats
(** Like {!run_testcase}, but [carry] (stats of a prefix already
    replayed into this engine by the snapshot cache) is folded into the
    returned stats and the metric counters, so a restored-prefix +
    suffix run reports exactly what one cold run of the whole test case
    would. [on_boundary n stats] fires after each completed,
    non-crashing statement with [n] = statements consumed so far and the
    cumulative stats — the safe points at which the engine may be
    {!snapshot}ted. *)

type snapshot
(** Frozen engine at a statement boundary: executor state (catalog deep
    copy), type window and statement budget. Shares nothing mutable with
    the live engine. *)

val snapshot : t -> snapshot
(** Capture the engine. Only valid at statement boundaries (between
    {!run_testcase} calls or inside [on_boundary]). *)

val restore :
  ?metrics:Telemetry.Registry.t ->
  snapshot ->
  cov:Coverage.Bitmap.t ->
  unit ->
  t
(** Build a fresh engine from a snapshot. The restored engine gets its
    own catalog records sharing persistent row storage with the
    snapshot (copy-on-write), so one snapshot can be restored any
    number of times and mutating a restored engine never leaks back
    into the snapshot. A restored
    engine continues bit-identically to the engine that was captured:
    catalog iteration orders, the statement-type window and the
    statement budget all match. *)

val snapshot_bytes : snapshot -> int
(** Incremental heap cost of a snapshot, O(#schema objects). Row data
    is shared with the live engine (see {!Catalog.approx_bytes}), so
    this is orders of magnitude below the pre-refactor deep-copy cost.
    Backs the prefix cache's memory accounting. *)

val query_rows :
  t -> Ast.query -> (Storage.Value.t array list, Errors.t) result
(** Convenience for examples and tests. *)

val set_plan_mode : t -> Executor.plan_mode -> unit
(** Pin or release access-path selection (see {!Executor.set_plan_mode});
    used by the differential-plan oracle's paired executions. *)
