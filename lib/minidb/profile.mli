(** A DBMS profile: which statement types a simulated DBMS supports, its
    behavioural flavour, and its seeded bug registry.

    Concrete profiles (PostgreSQL-sim, MySQL-sim, MariaDB-sim, Comdb2-sim)
    are defined in the [dialects] library; the engine only needs this
    record. *)

type flavor = Pg | Mysql | Mariadb | Comdb2

type t

val make :
  name:string ->
  flavor:flavor ->
  types:Sqlcore.Stmt_type.t list ->
  bugs:Fault.bug list ->
  t

val name : t -> string

val flavor : t -> flavor

val types : t -> Sqlcore.Stmt_type.t list

val type_count : t -> int

val bugs : t -> Fault.bug list

val supports : t -> Sqlcore.Stmt_type.t -> bool
(** O(1); unsupported statement types are rejected by the engine with a
    [Not_supported] error, like a real parser rejecting foreign syntax. *)

val with_quirks : t -> string list -> t
(** The same profile with the named quirks active. Quirks are deliberate
    behavioural deviations the executor honours — test-only planted logic
    bugs for the oracle layer (["index_eq_skips_first"],
    ["rule_rewrite_noop"]); every shipped dialect has none. *)

val quirk : t -> string -> bool
(** Is the named quirk active in this profile? *)

val quirks : t -> string list

val without_bugs : t -> t
(** The same profile with an empty bug registry — the fault-free replay
    profile the logic-bug oracles execute against ({!Fault.Crashed} can
    never fire). Quirks are preserved: a planted logic bug must stay
    visible to the oracle replay. *)
