open Sqlcore

type index_spec = {
  x_name : string;
  x_table : string;
  x_cols : string list;
  x_unique : bool;
  x_data : Storage.Index.t;
}

type trigger = {
  tr_name : string;
  tr_table : string;
  tr_timing : Ast.trig_timing;
  tr_event : Ast.trig_event;
  tr_body : Ast.stmt list;
}

type rule = {
  r_name : string;
  r_table : string;
  r_event : Ast.trig_event;
  r_instead : bool;
  r_action : Ast.rule_action;
}

type view = {
  v_name : string;
  v_materialized : bool;
  v_query : Ast.query;
  mutable v_cache : Storage.Value.t array list option;
}

type sequence = {
  mutable sq_value : int;
  mutable sq_step : int;
  sq_start : int;
}

type user = {
  mutable us_password : string;
  mutable us_privs : (string * Ast.priv list) list;
}

type t = {
  tables : (string, Storage.Table.t) Hashtbl.t;
  views : (string, view) Hashtbl.t;
  indexes : (string, index_spec) Hashtbl.t;
  triggers : (string, trigger) Hashtbl.t;
  rules : (string, rule) Hashtbl.t;
  sequences : (string, sequence) Hashtbl.t;
  schemas : (string, unit) Hashtbl.t;
  databases : (string, unit) Hashtbl.t;
  users : (string, user) Hashtbl.t;
  session_vars : (string, Storage.Value.t) Hashtbl.t;
  global_vars : (string, Storage.Value.t) Hashtbl.t;
  prepared : (string, Ast.stmt) Hashtbl.t;
  comments : (string, string) Hashtbl.t;
  locks : (string, Ast.lock_mode) Hashtbl.t;
  handlers : (string, int) Hashtbl.t;
  mutable listening : string list;
  mutable notify_queue : (string * string option) list;
  mutable current_user : string;
  mutable current_db : string;
  mutable in_txn : bool;
  mutable iso : Ast.iso_level;
  mutable txn_snapshot : snapshot option;
  mutable savepoints : (string * snapshot) list;
  mutable parked : (int * session_view) list;
}

and snapshot = {
  sn_tables : (string * Storage.Table.t) list;
  sn_sequences : (string * int) list;
}

(* Connection-scoped state lifted out of the catalog while another
   session is attached. Everything here is what a real server keeps in
   its per-connection control block; the shared store (tables, schema
   objects, global variables) stays in [t] and is never swapped. *)
and session_view = {
  mutable sv_in_txn : bool;
  mutable sv_iso : Ast.iso_level;
  mutable sv_txn_snapshot : snapshot option;
  mutable sv_savepoints : (string * snapshot) list;
  sv_session_vars : (string, Storage.Value.t) Hashtbl.t;
  sv_prepared : (string, Ast.stmt) Hashtbl.t;
  sv_handlers : (string, int) Hashtbl.t;
  mutable sv_listening : string list;
  mutable sv_notify_queue : (string * string option) list;
  mutable sv_current_user : string;
  mutable sv_current_db : string;
}

let create () =
  let databases = Hashtbl.create 4 in
  Hashtbl.replace databases "main" ();
  let users = Hashtbl.create 4 in
  Hashtbl.replace users "root" { us_password = ""; us_privs = [] };
  { tables = Hashtbl.create 16;
    views = Hashtbl.create 8;
    indexes = Hashtbl.create 8;
    triggers = Hashtbl.create 8;
    rules = Hashtbl.create 8;
    sequences = Hashtbl.create 8;
    schemas = Hashtbl.create 4;
    databases;
    users;
    session_vars = Hashtbl.create 8;
    global_vars = Hashtbl.create 8;
    prepared = Hashtbl.create 8;
    comments = Hashtbl.create 8;
    locks = Hashtbl.create 4;
    handlers = Hashtbl.create 4;
    listening = [];
    notify_queue = [];
    current_user = "root";
    current_db = "main";
    in_txn = false;
    iso = Ast.Read_committed;
    txn_snapshot = None;
    savepoints = [];
    parked = [] }

let find_table t name =
  match Hashtbl.find_opt t.tables name with
  | Some table -> table
  | None -> Errors.fail (Errors.No_such_table name)

let table_exists t name = Hashtbl.mem t.tables name

let view_exists t name = Hashtbl.mem t.views name

let name_in_use t name = table_exists t name || view_exists t name

let indexes_on t table =
  Hashtbl.fold
    (fun _ spec acc -> if spec.x_table = table then spec :: acc else acc)
    t.indexes []

let triggers_on t table event =
  Hashtbl.fold
    (fun _ tr acc ->
       if tr.tr_table = table && tr.tr_event = event then tr :: acc else acc)
    t.triggers []

let rules_on t table event =
  Hashtbl.fold
    (fun _ r acc ->
       if r.r_table = table && r.r_event = event then r :: acc else acc)
    t.rules []

(* Copy-on-write snapshots are the production mode: table copies share
   their persistent row maps, making every snapshot O(#objects). The
   REPRO_COW bench ablation flips this off to measure the pre-refactor
   physical-copy cost; outcomes are identical either way. *)
let cow_enabled = ref true

let set_copy_on_write b = cow_enabled := b

let table_copy tbl =
  if !cow_enabled then Storage.Table.copy tbl
  else Storage.Table.deep_copy tbl

let take_snapshot t =
  { sn_tables =
      Hashtbl.fold
        (fun name table acc -> (name, table_copy table) :: acc)
        t.tables [];
    sn_sequences =
      Hashtbl.fold
        (fun name sq acc -> (name, sq.sq_value) :: acc)
        t.sequences [] }

let rebuild_indexes t =
  Hashtbl.iter
    (fun _ spec ->
       Storage.Index.clear spec.x_data;
       match Hashtbl.find_opt t.tables spec.x_table with
       | None -> ()
       | Some table ->
         let positions =
           List.filter_map (Storage.Table.col_index table) spec.x_cols
         in
         if List.length positions = List.length spec.x_cols then
           Storage.Table.iter
             (fun rowid row ->
                let key = List.map (fun p -> row.(p)) positions in
                ignore (Storage.Index.add spec.x_data key rowid))
             table)
    t.indexes

let restore_snapshot t snapshot =
  (* Tables present at snapshot time get their contents back; tables
     created afterwards are emptied (DDL itself survives, like MySQL's
     non-transactional DDL). *)
  Hashtbl.iter
    (fun name table ->
       match List.assoc_opt name snapshot.sn_tables with
       | Some saved -> Hashtbl.replace t.tables name (table_copy saved)
       | None -> ignore (Storage.Table.truncate table))
    (Hashtbl.copy t.tables);
  List.iter
    (fun (name, v) ->
       match Hashtbl.find_opt t.sequences name with
       | Some sq -> sq.sq_value <- v
       | None -> ())
    snapshot.sn_sequences;
  rebuild_indexes t

let copy_snapshot sn =
  { sn_tables =
      List.map (fun (n, tbl) -> (n, table_copy tbl)) sn.sn_tables;
    sn_sequences = sn.sn_sequences }

(* ---- per-session connection state (multi-session server layer) ---- *)

let fresh_session_view () =
  { sv_in_txn = false;
    sv_iso = Ast.Read_committed;
    sv_txn_snapshot = None;
    sv_savepoints = [];
    sv_session_vars = Hashtbl.create 8;
    sv_prepared = Hashtbl.create 8;
    sv_handlers = Hashtbl.create 4;
    sv_listening = [];
    sv_notify_queue = [];
    sv_current_user = "root";
    sv_current_db = "main" }

(* [transfer dst src] rebinds [dst]'s contents to [src]'s. Layout after
   a reset+replace sequence is a pure function of insertion order, which
   is itself the (deterministic) iteration order of [src] — so repeated
   park/unpark cycles with identical statement histories keep identical
   bucket layouts, preserving the engine-wide determinism contract. *)
let transfer dst src =
  Hashtbl.reset dst;
  Hashtbl.iter (fun k v -> Hashtbl.replace dst k v) src

let detach_session t =
  let view =
    { sv_in_txn = t.in_txn;
      sv_iso = t.iso;
      sv_txn_snapshot = t.txn_snapshot;
      sv_savepoints = t.savepoints;
      sv_session_vars = Hashtbl.copy t.session_vars;
      sv_prepared = Hashtbl.copy t.prepared;
      sv_handlers = Hashtbl.copy t.handlers;
      sv_listening = t.listening;
      sv_notify_queue = t.notify_queue;
      sv_current_user = t.current_user;
      sv_current_db = t.current_db }
  in
  (* Reset the catalog to fresh-connection defaults so an attach always
     starts from the same base state regardless of who ran last. *)
  t.in_txn <- false;
  t.iso <- Ast.Read_committed;
  t.txn_snapshot <- None;
  t.savepoints <- [];
  Hashtbl.reset t.session_vars;
  Hashtbl.reset t.prepared;
  Hashtbl.reset t.handlers;
  t.listening <- [];
  t.notify_queue <- [];
  t.current_user <- "root";
  t.current_db <- "main";
  view

let attach_session t view =
  t.in_txn <- view.sv_in_txn;
  t.iso <- view.sv_iso;
  t.txn_snapshot <- view.sv_txn_snapshot;
  t.savepoints <- view.sv_savepoints;
  transfer t.session_vars view.sv_session_vars;
  transfer t.prepared view.sv_prepared;
  transfer t.handlers view.sv_handlers;
  t.listening <- view.sv_listening;
  t.notify_queue <- view.sv_notify_queue;
  t.current_user <- view.sv_current_user;
  t.current_db <- view.sv_current_db

let park_session t id =
  let view = detach_session t in
  t.parked <-
    List.merge
      (fun (a, _) (b, _) -> compare a b)
      [ (id, view) ]
      (List.remove_assoc id t.parked)

let unpark_session t id =
  let view =
    match List.assoc_opt id t.parked with
    | Some v -> v
    | None -> fresh_session_view ()
  in
  t.parked <- List.remove_assoc id t.parked;
  attach_session t view

let parked_sessions t = List.map fst t.parked

let copy_session_view sv =
  { sv_in_txn = sv.sv_in_txn;
    sv_iso = sv.sv_iso;
    sv_txn_snapshot = Option.map copy_snapshot sv.sv_txn_snapshot;
    sv_savepoints =
      List.map (fun (n, sn) -> (n, copy_snapshot sn)) sv.sv_savepoints;
    sv_session_vars = Hashtbl.copy sv.sv_session_vars;
    sv_prepared = Hashtbl.copy sv.sv_prepared;
    sv_handlers = Hashtbl.copy sv.sv_handlers;
    sv_listening = sv.sv_listening;
    sv_notify_queue = sv.sv_notify_queue;
    sv_current_user = sv.sv_current_user;
    sv_current_db = sv.sv_current_db }

(* [Hashtbl.copy] then rewriting every binding in place keeps the
   bucket layout — and therefore the fold/iter order every consumer of
   [indexes_on]/[triggers_on]/... observes — identical to the source
   table's. That is load-bearing for the prefix-snapshot cache: replays
   from a restored catalog must follow the same trigger/index order a
   cold replay would. *)
let copy_bindings copy_v h =
  let h' = Hashtbl.copy h in
  Hashtbl.filter_map_inplace (fun _ v -> Some (copy_v v)) h';
  h'

let deep_copy t =
  { tables = copy_bindings table_copy t.tables;
    views =
      (* Cached rows are never mutated in place — a REFRESH rebinds the
         copy's own [v_cache] field — so the row lists can be shared. *)
      copy_bindings (fun v -> { v with v_cache = v.v_cache }) t.views;
    indexes =
      copy_bindings
        (fun s -> { s with x_data = Storage.Index.copy s.x_data })
        t.indexes;
    (* Immutable payloads: a plain table copy is enough. *)
    triggers = Hashtbl.copy t.triggers;
    rules = Hashtbl.copy t.rules;
    sequences =
      copy_bindings
        (fun sq ->
           { sq_value = sq.sq_value; sq_step = sq.sq_step;
             sq_start = sq.sq_start })
        t.sequences;
    schemas = Hashtbl.copy t.schemas;
    databases = Hashtbl.copy t.databases;
    users =
      copy_bindings
        (fun u -> { us_password = u.us_password; us_privs = u.us_privs })
        t.users;
    session_vars = Hashtbl.copy t.session_vars;
    global_vars = Hashtbl.copy t.global_vars;
    prepared = Hashtbl.copy t.prepared;
    comments = Hashtbl.copy t.comments;
    locks = Hashtbl.copy t.locks;
    handlers = Hashtbl.copy t.handlers;
    listening = t.listening;
    notify_queue = t.notify_queue;
    current_user = t.current_user;
    current_db = t.current_db;
    in_txn = t.in_txn;
    iso = t.iso;
    txn_snapshot = Option.map copy_snapshot t.txn_snapshot;
    savepoints = List.map (fun (n, sn) -> (n, copy_snapshot sn)) t.savepoints;
    parked = List.map (fun (id, sv) -> (id, copy_session_view sv)) t.parked }

let snap_words sn = 16 * List.length sn.sn_tables

(* Heap cost of one parked session's connection state: its txn snapshot,
   savepoints and variable tables. With N sessions live each parked view
   carries its own copies, so [approx_words] prices them all — keeping
   [cache.bytes] honest under multi-session fuzzing, not just for the
   attached session's share. *)
let session_view_words sv =
  64
  + (match sv.sv_txn_snapshot with Some sn -> snap_words sn | None -> 0)
  + List.fold_left (fun acc (_, sn) -> acc + snap_words sn) 0 sv.sv_savepoints
  + 4
    * (Hashtbl.length sv.sv_session_vars + Hashtbl.length sv.sv_prepared
       + Hashtbl.length sv.sv_handlers)

let object_count t =
  Hashtbl.length t.tables + Hashtbl.length t.views + Hashtbl.length t.indexes
  + Hashtbl.length t.triggers + Hashtbl.length t.rules
  + Hashtbl.length t.sequences

(* Incremental heap cost of a [deep_copy], in words. Since tables,
   indexes and view caches went persistent, a copy shares all row data
   with its source: what it actually allocates is one record per
   table/view/index/sequence/user, the copied hash-table bucket arrays,
   and the snapshot/savepoint spines. Row counts deliberately do NOT
   appear — that is the whole point of the copy-on-write refactor, and
   the prefix-snapshot cache's eviction pressure must reflect the real
   (shared) footprint, not the pre-refactor deep-copy one. Must stay
   cheap (O(#objects)) and roughly monotone in real incremental size. *)
let approx_words t =
  (* Fresh record per object (header + fields + binding cell). *)
  let record_copies =
    16
    * (Hashtbl.length t.tables + Hashtbl.length t.views
       + Hashtbl.length t.indexes + Hashtbl.length t.sequences
       + Hashtbl.length t.users)
  in
  (* [Hashtbl.copy] duplicates bucket arrays: ~4 words per binding on
     top of a fixed per-table floor (15 hash tables in a catalog). *)
  let bucket_copies =
    4
    * (object_count t + Hashtbl.length t.prepared
       + Hashtbl.length t.session_vars + Hashtbl.length t.global_vars
       + Hashtbl.length t.users + Hashtbl.length t.comments
       + Hashtbl.length t.locks + Hashtbl.length t.handlers)
  in
  let snapshots =
    (match t.txn_snapshot with Some sn -> snap_words sn | None -> 0)
    + List.fold_left
        (fun acc (_, sn) -> acc + snap_words sn)
        0 t.savepoints
    + List.fold_left
        (fun acc (_, sv) -> acc + session_view_words sv)
        0 t.parked
  in
  (* In the REPRO_COW ablation's legacy mode copies really do duplicate
     every row, so account for them — eviction pressure must match the
     copying regime actually in force. *)
  let legacy_rows =
    if !cow_enabled then 0
    else
      Hashtbl.fold
        (fun _ tbl acc ->
           acc
           + (Storage.Table.row_count tbl * (Storage.Table.arity tbl + 4)))
        t.tables 0
  in
  512 + record_copies + bucket_copies + snapshots + legacy_rows

let approx_bytes t = approx_words t * (Sys.word_size / 8)
