type flavor = Pg | Mysql | Mariadb | Comdb2

type t = {
  p_name : string;
  p_flavor : flavor;
  p_types : Sqlcore.Stmt_type.t list;
  p_bugs : Fault.bug list;
  p_supported : bool array;
  p_quirks : string list;
}

let make ~name ~flavor ~types ~bugs =
  let quirks = [] in
  let supported = Array.make Sqlcore.Stmt_type.count false in
  List.iter
    (fun ty -> supported.(Sqlcore.Stmt_type.to_index ty) <- true)
    types;
  { p_name = name; p_flavor = flavor; p_types = types; p_bugs = bugs;
    p_supported = supported; p_quirks = quirks }

let name t = t.p_name

let flavor t = t.p_flavor

let types t = t.p_types

let type_count t = List.length t.p_types

let bugs t = t.p_bugs

let supports t ty = t.p_supported.(Sqlcore.Stmt_type.to_index ty)

let with_quirks t quirks = { t with p_quirks = quirks }

let quirk t name = List.mem name t.p_quirks

let quirks t = t.p_quirks

let without_bugs t = { t with p_bugs = [] }
