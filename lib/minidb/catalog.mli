(** Session-wide database state: schema objects, variables, transaction
    snapshots, inter-statement queues.

    One {!t} is the whole "database server" a test case runs against; the
    fuzzing harness creates a fresh one per execution (the analogue of
    AFL++'s forkserver resetting the target). *)

open Sqlcore

type index_spec = {
  x_name : string;
  x_table : string;
  x_cols : string list;
  x_unique : bool;
  x_data : Storage.Index.t;
}

type trigger = {
  tr_name : string;
  tr_table : string;
  tr_timing : Ast.trig_timing;
  tr_event : Ast.trig_event;
  tr_body : Ast.stmt list;
}

type rule = {
  r_name : string;
  r_table : string;
  r_event : Ast.trig_event;
  r_instead : bool;
  r_action : Ast.rule_action;
}

type view = {
  v_name : string;
  v_materialized : bool;
  v_query : Ast.query;
  mutable v_cache : Storage.Value.t array list option;
      (** materialised rows; [None] until refreshed *)
}

type sequence = {
  mutable sq_value : int;
  mutable sq_step : int;
  sq_start : int;
}

type user = {
  mutable us_password : string;
  mutable us_privs : (string * Ast.priv list) list;  (** per table *)
}

type t = {
  tables : (string, Storage.Table.t) Hashtbl.t;
  views : (string, view) Hashtbl.t;
  indexes : (string, index_spec) Hashtbl.t;
  triggers : (string, trigger) Hashtbl.t;
  rules : (string, rule) Hashtbl.t;
  sequences : (string, sequence) Hashtbl.t;
  schemas : (string, unit) Hashtbl.t;
  databases : (string, unit) Hashtbl.t;
  users : (string, user) Hashtbl.t;
  session_vars : (string, Storage.Value.t) Hashtbl.t;
  global_vars : (string, Storage.Value.t) Hashtbl.t;
  prepared : (string, Ast.stmt) Hashtbl.t;
  comments : (string, string) Hashtbl.t;
  locks : (string, Ast.lock_mode) Hashtbl.t;
  handlers : (string, int) Hashtbl.t;  (** open HANDLER cursors: position *)
  mutable listening : string list;
  mutable notify_queue : (string * string option) list;
  mutable current_user : string;
  mutable current_db : string;
  mutable in_txn : bool;
  mutable iso : Ast.iso_level;
  mutable txn_snapshot : snapshot option;
  mutable savepoints : (string * snapshot) list;
}

and snapshot

val create : unit -> t
(** Fresh catalog with the default database and root user. *)

val find_table : t -> string -> Storage.Table.t
(** @raise Errors.Sql_error with [No_such_table] when absent. *)

val table_exists : t -> string -> bool

val view_exists : t -> string -> bool

val name_in_use : t -> string -> bool
(** Tables and views share a namespace. *)

val indexes_on : t -> string -> index_spec list

val triggers_on : t -> string -> Ast.trig_event -> trigger list

val rules_on : t -> string -> Ast.trig_event -> rule list

val take_snapshot : t -> snapshot
(** Snapshot of table contents and sequence positions. O(#tables): each
    table copy shares its persistent row map with the live table. *)

val restore_snapshot : t -> snapshot -> unit
(** Restore data to the snapshot; schema objects created since the
    snapshot that hold data are cleared, and index data is rebuilt. *)

val rebuild_indexes : t -> unit

val deep_copy : t -> t
(** Independent copy of the whole catalog — every table, index, view
    cache, sequence, variable table, transaction snapshot and
    savepoint. Mutating either side never affects the other, and hash
    table bucket layouts are preserved so iteration orders match the
    source. O(#objects), not O(#rows): tables and indexes are backed by
    persistent structures, so the copy shares all row data with the
    source and later mutations only rebind per-copy roots. Backs the
    prefix-snapshot execution cache. *)

val object_count : t -> int
(** Total number of schema objects, for coverage state keys. *)

val set_copy_on_write : bool -> unit
(** Global snapshot mode. [true] (the default) makes every table copy
    O(1) via the persistent storage layer; [false] restores the
    pre-refactor physical row copies. Outcomes are identical in both
    modes — only wall clock and heap pressure differ. Exists for the
    REPRO_COW bench ablation; production code never flips it. *)

val approx_bytes : t -> int
(** Incremental heap cost of a {!deep_copy}: per-object record copies
    plus hash-table buckets, with all row data shared via the
    persistent storage layer (so row counts do not appear). O(#objects)
    and roughly monotone in real incremental size. Backs the
    prefix-snapshot cache's memory accounting, whose byte budget now
    stretches ~100x further than under pre-refactor deep copies. *)
