(** Session-wide database state: schema objects, variables, transaction
    snapshots, inter-statement queues.

    One {!t} is the whole "database server" a test case runs against; the
    fuzzing harness creates a fresh one per execution (the analogue of
    AFL++'s forkserver resetting the target). *)

open Sqlcore

type index_spec = {
  x_name : string;
  x_table : string;
  x_cols : string list;
  x_unique : bool;
  x_data : Storage.Index.t;
}

type trigger = {
  tr_name : string;
  tr_table : string;
  tr_timing : Ast.trig_timing;
  tr_event : Ast.trig_event;
  tr_body : Ast.stmt list;
}

type rule = {
  r_name : string;
  r_table : string;
  r_event : Ast.trig_event;
  r_instead : bool;
  r_action : Ast.rule_action;
}

type view = {
  v_name : string;
  v_materialized : bool;
  v_query : Ast.query;
  mutable v_cache : Storage.Value.t array list option;
      (** materialised rows; [None] until refreshed *)
}

type sequence = {
  mutable sq_value : int;
  mutable sq_step : int;
  sq_start : int;
}

type user = {
  mutable us_password : string;
  mutable us_privs : (string * Ast.priv list) list;  (** per table *)
}

type t = {
  tables : (string, Storage.Table.t) Hashtbl.t;
  views : (string, view) Hashtbl.t;
  indexes : (string, index_spec) Hashtbl.t;
  triggers : (string, trigger) Hashtbl.t;
  rules : (string, rule) Hashtbl.t;
  sequences : (string, sequence) Hashtbl.t;
  schemas : (string, unit) Hashtbl.t;
  databases : (string, unit) Hashtbl.t;
  users : (string, user) Hashtbl.t;
  session_vars : (string, Storage.Value.t) Hashtbl.t;
  global_vars : (string, Storage.Value.t) Hashtbl.t;
  prepared : (string, Ast.stmt) Hashtbl.t;
  comments : (string, string) Hashtbl.t;
  locks : (string, Ast.lock_mode) Hashtbl.t;
  handlers : (string, int) Hashtbl.t;  (** open HANDLER cursors: position *)
  mutable listening : string list;
  mutable notify_queue : (string * string option) list;
  mutable current_user : string;
  mutable current_db : string;
  mutable in_txn : bool;
  mutable iso : Ast.iso_level;
  mutable txn_snapshot : snapshot option;
  mutable savepoints : (string * snapshot) list;
  mutable parked : (int * session_view) list;
      (** connection state of sessions not currently attached, keyed by
          session id and sorted by it (see {!park_session}) *)
}

and snapshot

and session_view
(** Connection-scoped state (transaction status, snapshots, savepoints,
    session variables, prepared statements, open handlers, LISTEN/NOTIFY
    queues, current user/database) lifted out of the catalog while
    another session is attached to the shared store. The server layer's
    session pool context-switches these in and out; the shared store —
    tables, schema objects, global variables — never moves. *)

val create : unit -> t
(** Fresh catalog with the default database and root user. *)

val find_table : t -> string -> Storage.Table.t
(** @raise Errors.Sql_error with [No_such_table] when absent. *)

val table_exists : t -> string -> bool

val view_exists : t -> string -> bool

val name_in_use : t -> string -> bool
(** Tables and views share a namespace. *)

val indexes_on : t -> string -> index_spec list

val triggers_on : t -> string -> Ast.trig_event -> trigger list

val rules_on : t -> string -> Ast.trig_event -> rule list

val take_snapshot : t -> snapshot
(** Snapshot of table contents and sequence positions. O(#tables): each
    table copy shares its persistent row map with the live table. *)

val restore_snapshot : t -> snapshot -> unit
(** Restore data to the snapshot; schema objects created since the
    snapshot that hold data are cleared, and index data is rebuilt. *)

val rebuild_indexes : t -> unit

val deep_copy : t -> t
(** Independent copy of the whole catalog — every table, index, view
    cache, sequence, variable table, transaction snapshot and
    savepoint. Mutating either side never affects the other, and hash
    table bucket layouts are preserved so iteration orders match the
    source. O(#objects), not O(#rows): tables and indexes are backed by
    persistent structures, so the copy shares all row data with the
    source and later mutations only rebind per-copy roots. Backs the
    prefix-snapshot execution cache. *)

val object_count : t -> int
(** Total number of schema objects, for coverage state keys. *)

val fresh_session_view : unit -> session_view
(** The connection state a just-connected session starts with. *)

val detach_session : t -> session_view
(** Capture the currently attached session's connection state and reset
    the catalog's session-scoped fields to fresh-connection defaults.
    The shared store is untouched. *)

val attach_session : t -> session_view -> unit
(** Install a session's connection state into the catalog. Hash-table
    bucket layouts after an attach are a pure function of the view's
    contents, so repeated park/unpark cycles with identical statement
    histories stay deterministic. *)

val park_session : t -> int -> unit
(** [park_session t id] detaches the current session and stores its view
    under [id] in {!t.parked} (replacing any previous view for [id]).
    The parked list stays sorted by id, so catalog copies and byte
    accounting are order-independent of the switch history. *)

val unpark_session : t -> int -> unit
(** Attach the view parked under [id], removing it from the parked list;
    a never-parked id attaches a {!fresh_session_view} (a new client
    connecting). *)

val parked_sessions : t -> int list
(** Ids with parked state, ascending. *)

val session_view_words : session_view -> int
(** Heap cost of one parked session's connection state, in words —
    counted per parked session by {!approx_bytes} so the prefix cache's
    [cache.bytes] stays honest with N sessions live. *)

val set_copy_on_write : bool -> unit
(** Global snapshot mode. [true] (the default) makes every table copy
    O(1) via the persistent storage layer; [false] restores the
    pre-refactor physical row copies. Outcomes are identical in both
    modes — only wall clock and heap pressure differ. Exists for the
    REPRO_COW bench ablation; production code never flips it. *)

val approx_bytes : t -> int
(** Incremental heap cost of a {!deep_copy}: per-object record copies
    plus hash-table buckets, with all row data shared via the
    persistent storage layer (so row counts do not appear). O(#objects)
    and roughly monotone in real incremental size. Backs the
    prefix-snapshot cache's memory accounting, whose byte budget now
    stretches ~100x further than under pre-refactor deep copies. *)
