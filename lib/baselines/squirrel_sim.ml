module Rng = Reprutil.Rng

type t = {
  rng : Rng.t;
  harness : Fuzz.Harness.t;
  pool : Fuzz.Seed_pool.t;
  mutants_per_step : int;
  sp_mutate : Telemetry.Span.t;
}

let process ?hint t tc =
  let outcome = Fuzz.Harness.execute ?hint t.harness tc in
  if outcome.Fuzz.Harness.o_interesting then
    ignore
      (Fuzz.Seed_pool.add t.pool ~tc ~cov_hash:outcome.o_cov_hash
         ~new_branches:outcome.o_new_branches ~cost:outcome.o_cost)

let create ?(seed = 1) ?(mutants_per_step = 6) ?limits ?harness profile =
  let harness =
    match harness with
    | Some h -> h
    | None -> Fuzz.Harness.create ?limits ~profile ()
  in
  let t =
    { rng = Rng.create (seed lxor 0x5153); (* distinct stream from LEGO *)
      harness;
      pool = Fuzz.Seed_pool.create ();
      mutants_per_step;
      sp_mutate =
        Telemetry.Span.stage (Fuzz.Harness.metrics harness) "mutate" }
  in
  List.iter (process t) (Fuzz.Corpus.initial profile);
  t

let step t () =
  match Fuzz.Seed_pool.select t.pool t.rng with
  | None -> ()
  | Some seed ->
    for _ = 1 to t.mutants_per_step do
      let mutant, pos =
        Telemetry.Span.time t.sp_mutate (fun () ->
            Lego.Conventional.mutate_testcase_at t.rng
              seed.Fuzz.Seed_pool.sd_tc)
      in
      (* statements before the mutated position print like the parent's *)
      process ~hint:pos t mutant
    done

let fuzzer t =
  { Fuzz.Driver.f_name = "SQUIRREL";
    f_step = step t;
    f_harness = t.harness;
    f_corpus =
      (fun () ->
         List.map (fun s -> s.Fuzz.Seed_pool.sd_tc)
           (Fuzz.Seed_pool.seeds t.pool));
    f_exchange = Some (Fuzz.Sync.seed_port t.pool) }

let pool_size t = Fuzz.Seed_pool.size t.pool
