open Sqlcore
module Rng = Reprutil.Rng

type t = {
  rng : Rng.t;
  harness : Fuzz.Harness.t;
  pool : Fuzz.Seed_pool.t;
  affinities : Lego.Affinity.t;
  skeletons : Lego.Skeleton_library.t;
  types : Stmt_type.t list;
  sp_mutate : Telemetry.Span.t;
}

let process ?hint t tc =
  let outcome = Fuzz.Harness.execute ?hint t.harness tc in
  if outcome.Fuzz.Harness.o_interesting then begin
    ignore
      (Fuzz.Seed_pool.add t.pool ~tc ~cov_hash:outcome.o_cov_hash
         ~new_branches:outcome.o_new_branches ~cost:outcome.o_cost);
    ignore (Lego.Skeleton_library.harvest t.skeletons tc)
  end

let create ?(seed = 1) ?limits ?harness ~affinities profile =
  let harness =
    match harness with
    | Some h -> h
    | None -> Fuzz.Harness.create ?limits ~profile ()
  in
  let t =
    { rng = Rng.create (seed lxor 0x51AF);
      harness;
      pool = Fuzz.Seed_pool.create ();
      affinities;
      skeletons = Lego.Skeleton_library.create ();
      types = Minidb.Profile.types profile;
      sp_mutate =
        Telemetry.Span.stage (Fuzz.Harness.metrics harness) "mutate" }
  in
  List.iter (process t) (Fuzz.Corpus.initial profile);
  t

(* The imported-affinity operator: pick a statement, look up its type's
   successors in LEGO's map, and insert a fresh statement of one of those
   types right after it. *)
let affinity_insert t tc =
  match tc with
  | [] -> None
  | _ ->
    let pos = Rng.int t.rng (List.length tc) in
    let anchor = Ast.type_of_stmt (List.nth tc pos) in
    let successors =
      List.filter
        (fun ty -> List.mem ty t.types)
        (Lego.Affinity.successors t.affinities anchor)
    in
    (match successors with
     | [] -> None
     | succ ->
       let ty = Rng.choose t.rng succ in
       let schema = Lego.Sym_schema.empty () in
       List.iteri
         (fun i s -> if i <= pos then Lego.Sym_schema.apply schema s)
         tc;
       let stmt =
         Lego.Instantiate.statement t.rng ~skeletons:t.skeletons ~schema ty
       in
       let mutant =
         List.concat
           (List.mapi
              (fun i s -> if i = pos then [ s; stmt ] else [ s ])
              tc)
       in
       if List.length mutant > 24 then None
       else
         (* statements up to and including the anchor are the parent's *)
         Some (Lego.Instantiate.repair t.rng mutant, pos + 1))

let step t () =
  match Fuzz.Seed_pool.select t.pool t.rng with
  | None -> ()
  | Some seed ->
    let tc = seed.Fuzz.Seed_pool.sd_tc in
    for _ = 1 to 4 do
      let mutant, pos =
        Telemetry.Span.time t.sp_mutate (fun () ->
            Lego.Conventional.mutate_testcase_at t.rng tc)
      in
      process ~hint:pos t mutant
    done;
    for _ = 1 to 2 do
      match Telemetry.Span.time t.sp_mutate (fun () -> affinity_insert t tc)
      with
      | Some (mutant, hint) -> process ~hint t mutant
      | None -> ()
    done

let fuzzer t =
  { Fuzz.Driver.f_name = "SQUIRREL+";
    f_step = step t;
    f_harness = t.harness;
    f_corpus =
      (fun () ->
         List.map (fun s -> s.Fuzz.Seed_pool.sd_tc)
           (Fuzz.Seed_pool.seeds t.pool));
    f_exchange = Some (Fuzz.Sync.seed_port t.pool) }
