open Sqlcore
module Rng = Reprutil.Rng
module Vec = Reprutil.Vec

type t = {
  rng : Rng.t;
  harness : Fuzz.Harness.t;
  profile : Minidb.Profile.t;
  kept : Ast.testcase Vec.t;  (* generated corpus, ring-buffered *)
  pool : Fuzz.Seed_pool.t;
      (* coverage-increasing cases, recorded for the cross-shard seed
         exchange only: generation never reads it back *)
  mutable next_slot : int;
  sp_synthesize : Telemetry.Span.t;
}

let corpus_cap = 4096

let create ?(seed = 1) ?limits ?harness profile =
  let harness =
    match harness with
    | Some h -> h
    | None -> Fuzz.Harness.create ?limits ~profile ()
  in
  { rng = Rng.create (seed lxor 0x1A9C);
    harness;
    profile;
    kept = Vec.create ();
    pool = Fuzz.Seed_pool.create ();
    next_slot = 0;
    sp_synthesize =
      Telemetry.Span.stage (Fuzz.Harness.metrics harness) "synthesize" }

let supported t ty = Minidb.Profile.supports t.profile ty

(* One pattern-rule test case: setup, population, pivot-ish queries. *)
let generate t =
  let rng = t.rng in
  let schema = Lego.Sym_schema.empty () in
  let stmts = ref [] in
  let push ty =
    if supported t ty then begin
      let s = Lego.Generator.stmt rng schema ty in
      Lego.Sym_schema.apply schema s;
      stmts := s :: !stmts
    end
  in
  (* session setup, like SQLancer's provider options *)
  if Rng.ratio rng 1 12 then push Stmt_type.Set_var;
  if Rng.ratio rng 1 8 then push Stmt_type.Begin_txn;
  let n_tables = 1 + Rng.int rng 2 in
  for _ = 1 to n_tables do
    push Stmt_type.Create_table
  done;
  if Rng.ratio rng 3 10 then push Stmt_type.Create_index;
  for _ = 1 to 1 + Rng.int rng 3 do
    push Stmt_type.Insert
  done;
  if Rng.ratio rng 3 10 then
    push (if Rng.bool rng then Stmt_type.Update else Stmt_type.Delete);
  for _ = 1 to 3 do
    (* PQS-style oracle queries: plain conjunctive SELECTs whose result a
       pivot-row oracle can check — no aggregation, windows, or joins. *)
    if supported t Stmt_type.Select then begin
      let s =
        Lego.Generator.select rng schema ~allow_window:false
          ~allow_agg:false ()
      in
      let s =
        { s with
          Ast.distinct = false;
          projs = [ Ast.Star ];
          group_by = [];
          having = None;
          from =
            (match s.Ast.from with
             | Some (Ast.From_join { left; _ }) -> Some left
             | f -> f) }
      in
      let st = Ast.S_select (Ast.Q_select s) in
      Lego.Sym_schema.apply schema st;
      stmts := st :: !stmts
    end
  done;
  (* occasional lifecycle statements, still from fixed rules *)
  if Rng.ratio rng 1 6 then push Stmt_type.Analyze;
  if Rng.ratio rng 1 8 then push Stmt_type.Truncate;
  if Rng.ratio rng 1 8 then push Stmt_type.Commit_txn;
  if Rng.ratio rng 1 8 then push Stmt_type.Drop_table;
  Lego.Instantiate.repair rng (List.rev !stmts)

let step t () =
  let tc = Telemetry.Span.time t.sp_synthesize (fun () -> generate t) in
  let outcome = Fuzz.Harness.execute t.harness tc in
  (* no priming: SQLancer is generation-based — successive cases share
     no statement prefixes, so cached snapshots would never be hit *)
  if outcome.Fuzz.Harness.o_interesting then
    ignore
      (Fuzz.Seed_pool.add t.pool ~tc ~cov_hash:outcome.o_cov_hash
         ~new_branches:outcome.o_new_branches ~cost:outcome.o_cost);
  if Vec.length t.kept < corpus_cap then Vec.push t.kept tc
  else begin
    Vec.set t.kept t.next_slot tc;
    t.next_slot <- (t.next_slot + 1) mod corpus_cap
  end

let fuzzer t =
  { Fuzz.Driver.f_name = "SQLancer";
    f_step = step t;
    f_harness = t.harness;
    f_corpus = (fun () -> Vec.to_list t.kept);
    f_exchange = Some (Fuzz.Sync.seed_port t.pool) }
