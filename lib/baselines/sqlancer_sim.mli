(** SQLancer-sim: rule-based test-case generation without coverage
    feedback.

    Each step generates a fresh test case from fixed pattern rules —
    schema setup (CREATE TABLE, sometimes CREATE INDEX / VIEW), data
    population, then several pivot-style SELECT queries — mirroring how
    SQLancer's PQS-style oracles drive a fixed statement pattern. The
    rules produce a moderate variety of statement types in fixed orders,
    which is why the paper's Table II credits SQLancer with more
    affinities than SQUIRREL but far fewer than LEGO. *)

type t

val create :
  ?seed:int ->
  ?limits:Minidb.Limits.t ->
  ?harness:Fuzz.Harness.t ->
  Minidb.Profile.t ->
  t
(** [?harness] injects a (e.g. shard-owned) execution harness; [?limits]
    only applies to a harness constructed here. *)

val fuzzer : t -> Fuzz.Driver.fuzzer
