open Sqlcore
module Rng = Reprutil.Rng
module Vec = Reprutil.Vec

type t = {
  rng : Rng.t;
  harness : Fuzz.Harness.t;
  preamble : Ast.testcase;
  kept : Ast.testcase Vec.t;
  pool : Fuzz.Seed_pool.t;
      (* coverage-increasing cases, recorded for the cross-shard seed
         exchange only: generation never reads it back *)
  mutable next_slot : int;
  sp_synthesize : Telemetry.Span.t;
}

let corpus_cap = 4096

(* The fixed schema SQLsmith would find in an existing database. *)
let preamble_sql =
  "CREATE TABLE t1 (c1 INT PRIMARY KEY, c2 INT, c3 VARCHAR(16));\n\
   CREATE TABLE t2 (c1 INT, c2 FLOAT, c3 TEXT);\n\
   CREATE TABLE t3 (c1 BOOL, c2 TEXT, c3 FLOAT, c4 INT);\n\
   INSERT INTO t1 VALUES (1, 10, 'alpha'), (2, 20, 'beta'), (3, 30, 'x');\n\
   INSERT INTO t2 VALUES (1, 1.5, 'p'), (2, 2.5, 'q');\n\
   INSERT INTO t3 VALUES (TRUE, 'z', 0.25, 7), (FALSE, '', -1.5, -7);"

let create ?(seed = 1) ?limits ?harness profile =
  let harness =
    match harness with
    | Some h -> h
    | None -> Fuzz.Harness.create ?limits ~profile ()
  in
  let preamble = Sqlparser.Parser.parse_testcase_exn preamble_sql in
  { rng = Rng.create (seed lxor 0x53A1);
    harness;
    preamble;
    kept = Vec.create ();
    pool = Fuzz.Seed_pool.create ();
    next_slot = 0;
    sp_synthesize =
      Telemetry.Span.stage (Fuzz.Harness.metrics harness) "synthesize" }

(* SQLsmith's hallmark is syntactic depth: nested derived tables, set
   operations, correlated EXISTS/IN predicates, deep scalar expressions —
   all inside a single SELECT statement. *)
let rec rich_query rng schema depth =
  let base () = Ast.Q_select (Lego.Generator.select rng schema ()) in
  if depth <= 0 then base ()
  else
    match Reprutil.Rng.int rng 5 with
    | 0 ->
      (* derived-table nesting *)
      let inner = rich_query rng schema (depth - 1) in
      Ast.Q_select
        { distinct = Reprutil.Rng.ratio rng 1 6;
          projs = [ Ast.Star ];
          from = Some (Ast.From_subquery { q = inner; alias = "sub" });
          where = None; group_by = []; having = None; order_by = [];
          limit =
            (if Reprutil.Rng.ratio rng 1 3 then
               Some (Reprutil.Rng.int rng 32)
             else None);
          offset = None }
    | 1 ->
      Ast.Q_compound
        ( rich_query rng schema (depth - 1),
          Reprutil.Rng.choose rng
            [ Ast.Union; Ast.Union_all; Ast.Intersect; Ast.Except ],
          rich_query rng schema (depth - 1) )
    | 2 ->
      (* correlated-style EXISTS / scalar-subquery predicate *)
      let inner = rich_query rng schema (depth - 1) in
      let s = Lego.Generator.select rng schema () in
      let pred =
        if Reprutil.Rng.bool rng then
          Ast.Exists (inner, Reprutil.Rng.ratio rng 1 3)
        else
          Ast.Binop
            ( Reprutil.Rng.choose rng [ Ast.Eq; Ast.Lt; Ast.Gt ],
              Ast.Subquery inner,
              Ast.Lit (Ast.L_int (Reprutil.Rng.int rng 64)) )
      in
      Ast.Q_select
        { s with
          where =
            (match s.where with
             | None -> Some pred
             | Some w -> Some (Ast.Binop (Ast.And, w, pred))) }
    | 3 ->
      (* deep scalar expressions in the projection list *)
      let s = Lego.Generator.select rng schema ~allow_window:true () in
      let cols =
        match s.Ast.from with
        | Some (Ast.From_table { name; _ }) ->
          Option.value ~default:[] (Lego.Sym_schema.table_cols schema name)
        | _ -> []
      in
      Ast.Q_select
        { s with
          projs =
            List.init
              (1 + Reprutil.Rng.int rng 3)
              (fun _ ->
                 Ast.Proj (Lego.Generator.expr rng ~cols ~depth:4, None)) }
    | _ -> base ()

let step t () =
  let tc =
    Telemetry.Span.time t.sp_synthesize (fun () ->
        let schema = Lego.Sym_schema.of_testcase t.preamble in
        let query =
          Ast.S_select (rich_query t.rng schema (2 + Reprutil.Rng.int t.rng 3))
        in
        t.preamble @ [ query ])
  in
  (* every case is [preamble @ query]: the preamble is the shared prefix
     of every execution, captured by the first one *)
  let outcome =
    Fuzz.Harness.execute ~hint:(List.length t.preamble) t.harness tc
  in
  if outcome.Fuzz.Harness.o_interesting then
    ignore
      (Fuzz.Seed_pool.add t.pool ~tc ~cov_hash:outcome.o_cov_hash
         ~new_branches:outcome.o_new_branches ~cost:outcome.o_cost);
  if Vec.length t.kept < corpus_cap then Vec.push t.kept tc
  else begin
    Vec.set t.kept t.next_slot tc;
    t.next_slot <- (t.next_slot + 1) mod corpus_cap
  end

let fuzzer t =
  { Fuzz.Driver.f_name = "SQLsmith";
    f_step = step t;
    f_harness = t.harness;
    f_corpus = (fun () -> Vec.to_list t.kept);
    f_exchange = Some (Fuzz.Sync.seed_port t.pool) }
