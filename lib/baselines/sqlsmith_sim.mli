(** SQLsmith-sim: random single-SELECT generation.

    Like SQLsmith, it generates syntactically rich SELECT statements and
    leaves the database unchanged: every test case is a fixed schema
    preamble plus exactly one random query, so its corpus contributes no
    SQL Type Sequence variety at all (the paper excludes it from Table II
    for this reason, and only runs it on PostgreSQL). *)

type t

val create :
  ?seed:int ->
  ?limits:Minidb.Limits.t ->
  ?harness:Fuzz.Harness.t ->
  Minidb.Profile.t ->
  t
(** [?harness] injects a (e.g. shard-owned) execution harness; [?limits]
    only applies to a harness constructed here. *)

val fuzzer : t -> Fuzz.Driver.fuzzer
