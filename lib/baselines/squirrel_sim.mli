(** SQUIRREL-sim: coverage-guided mutation of the {e inner structure} of
    individual statements.

    Reproduces the mechanism the paper attributes to SQUIRREL (Zhong et
    al., CCS'20): syntax-preserving, semantics-guided mutation with
    dependency repair and coverage feedback — but no sequence-oriented
    mutation, so the SQL Type Sequences of its seeds stay those of the
    initial corpus (the paper's Fig. 1 observation). *)

type t

val create :
  ?seed:int ->
  ?mutants_per_step:int ->
  ?limits:Minidb.Limits.t ->
  ?harness:Fuzz.Harness.t ->
  Minidb.Profile.t ->
  t
(** [?harness] injects a (e.g. shard-owned) execution harness; [?limits]
    only applies to a harness constructed here. *)

val fuzzer : t -> Fuzz.Driver.fuzzer

val pool_size : t -> int
