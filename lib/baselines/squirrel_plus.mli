(** SQUIRREL+ : the paper's §VI feasibility sketch, implemented.

    "For mutation-based fuzzers, we can add mutation operators under the
    guidance of LEGO's type-affinity." This fuzzer is SQUIRREL-sim plus
    one new operator: insert, after a random statement, a fresh statement
    whose type an {e imported} affinity map (learned by a previous LEGO
    campaign and exported with {!Lego.Affinity.to_string}) says can follow
    it. It cannot {e discover} affinities — it only consumes LEGO's — which
    is the paper's point: the knowledge transfers, the discovery loop does
    not. *)

type t

val create :
  ?seed:int ->
  ?limits:Minidb.Limits.t ->
  ?harness:Fuzz.Harness.t ->
  affinities:Lego.Affinity.t ->
  Minidb.Profile.t ->
  t

val fuzzer : t -> Fuzz.Driver.fuzzer
(** Named ["SQUIRREL+"]. *)
