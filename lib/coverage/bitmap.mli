(** AFL-style edge-coverage bitmap.

    The paper instruments DBMSs with AFL++'s compile-time branch
    instrumentation; MiniDB is hand-instrumented instead, with {!probe}
    calls at semantic branch points. Each probe mixes a registered site id
    (see {!Sites}) with a small state key, so the same source location
    reached in different engine states lights up different cells — the
    property that makes coverage sensitive to SQL Type Sequences
    (paper Fig. 2).

    Hit counts are classified into AFL's logarithmic buckets before being
    merged into a persistent {e virgin} map, so "loop ran 3 times" vs
    "loop ran 100 times" counts as new coverage exactly once, like AFL. *)

type t

val size : int
(** Number of cells (65536). *)

val create : unit -> t

val reset : t -> unit
(** Zero all cells (reuse between executions). Cost is proportional to
    the number of cells touched since the previous reset, not to the map
    size, so per-execution reuse of one scratch map stays cheap. *)

val hit : t -> int -> unit
(** Increment the cell at [index mod size]. *)

val probe : t -> site:int -> key:int -> unit
(** Record that probe [site] fired in state [key]. *)

val mix : site:int -> key:int -> int
(** Avalanching slot index for [(site, key)]. Unlike {!probe}'s
    historical xor-of-products — which folds the site id in linearly and
    lets distinct (site, key) pairs alias to one slot — [mix] multiplies
    the site id in and re-finalises, so every site bit disturbs every
    output bit. New slot families (the grammar rule-pair region) use
    this; the edge map keeps {!probe} so recorded edge campaigns stay
    comparable. *)

val probe_mixed : t -> site:int -> key:int -> unit
(** [hit t (mix ~site ~key)]. *)

val count_nonzero : t -> int
(** Number of cells with a nonzero value — the "branches" metric. *)

val count_nonzero_in : t -> lo:int -> hi:int -> int
(** Nonzero cells with index in [\[lo, hi)]. Lets one map carry two
    disjoint slot families that are counted separately but share the
    merge/diff/compact algebra. *)

val bucket : int -> int
(** AFL hit-count bucket of a raw count (power-of-two bit). *)

val merge_into : virgin:t -> t -> int
(** Fold an execution map into the accumulated virgin map; returns the
    number of cells whose bucket set grew (i.e. new coverage). *)

val count_news : virgin:t -> t -> int
(** What {!merge_into} would return, without mutating [virgin]: the
    number of execution-map cells holding bucket bits the virgin map
    lacks. Generation bias ranks candidates by this. *)

val merge : into:t -> t -> int
(** Union of two {e virgin} maps ([into ⊔ src], bitwise or per cell since
    virgin cells hold bucket-bit sets); returns the number of cells whose
    bucket set grew. Commutative and idempotent up to the return value:
    re-merging the same map reports zero news. This is the cross-shard
    coverage-exchange primitive of the campaign engine. *)

val snapshot : t -> t
(** Cheap point-in-time copy, for shards to diff against later. *)

val load : into:t -> t -> unit
(** Make [into] cell-for-cell equal to [src], i.e. [reset] followed by
    copying [src]'s touched cells. Cost is proportional to the touched
    cells of both maps. Used to restore a cached execution map. *)

val diff : t -> since:t -> int
(** Number of cells of [t] holding bucket bits absent from [since] — i.e.
    the new coverage accumulated since [since] was {!snapshot}ed. *)

val hash : t -> int64
(** Order-insensitive 64-bit digest of the bucketed map, used to
    deduplicate seeds with identical coverage. *)

val is_set : t -> int -> bool

val copy : t -> t

type compact
(** Frozen point-in-time copy storing only touched cells; creating,
    holding and restoring one costs O(touched cells), not O(map size).
    The prefix-snapshot cache stores one per cached boundary. *)

val compact : t -> compact

val load_compact : into:t -> compact -> unit
(** Make [into] cell-for-cell equal to the map [compact] was taken
    from. *)

val compact_bytes : compact -> int
(** Approximate heap footprint, for cache memory accounting. *)

val compact_cells : compact -> (int * int) list
(** The nonzero cells of a compact map as [(index, value)] pairs in
    ascending index order — the canonical serialisable form (the farm
    store persists virgin maps this way). Deterministic for equal map
    contents regardless of the order cells were touched in. *)

val compact_of_cells : (int * int) list -> compact
(** Inverse of {!compact_cells}: rebuild a compact map from cell pairs.
    Indices are reduced mod {!size} and values clamped to a byte; later
    duplicates overwrite earlier ones. *)
