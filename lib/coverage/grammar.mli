(** Slot layout for grammar-rule coverage.

    The parser records fired productions into a second {!Bitmap}
    (separate from the edge map, so grammar slots can never collide with
    edge slots). The map's lower half holds one cell per production site
    — the cell index {e is} the {!Sites} id, injective by construction —
    and the upper half holds rule {e pairs} (production × parent
    production), spread by the avalanching {!Bitmap.mix}. Both families
    share the edge map's merge/diff/snapshot/compact algebra, so shards
    union grammar coverage with the very same [Bitmap.merge] the
    campaign engine already uses for edges. *)

val rule_region : int
(** Boundary between the two families: rule cells occupy
    [\[0, rule_region)], pair cells [\[rule_region, Bitmap.size)]. *)

val rule_slot : site:int -> int
(** The cell of production [site]: the id itself. *)

val pair_slot : site:int -> parent:int -> int
(** The cell of the (production, parent production) pair. *)

val record : Bitmap.t -> site:int -> parent:int -> unit
(** Fire production [site] under [parent]: hits both the rule cell and
    the pair cell. *)

val rules : Bitmap.t -> int
(** Distinct productions fired. *)

val pairs : Bitmap.t -> int
(** Distinct (production, parent) pairs fired. *)
