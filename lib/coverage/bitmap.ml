type t = Bytes.t

let size = 65536

let mask = size - 1

let create () = Bytes.make size '\000'

let reset t = Bytes.fill t 0 size '\000'

let hit t index =
  let i = index land mask in
  let v = Char.code (Bytes.unsafe_get t i) in
  if v < 255 then Bytes.unsafe_set t i (Char.chr (v + 1))

(* Knuth multiplicative mixing keeps distinct (site, key) pairs well
   spread over the map, like AFL's random edge ids. *)
let probe t ~site ~key =
  let h = (site * 0x9E3779B1) lxor ((key + 1) * 0x85EBCA6B) in
  hit t (h lxor (h lsr 15))

let count_nonzero t =
  let n = ref 0 in
  for i = 0 to size - 1 do
    if Bytes.unsafe_get t i <> '\000' then incr n
  done;
  !n

let bucket = function
  | 0 -> 0
  | 1 -> 1
  | 2 -> 2
  | 3 -> 4
  | n when n < 8 -> 8
  | n when n < 16 -> 16
  | n when n < 32 -> 32
  | n when n < 128 -> 64
  | _ -> 128

let merge_into ~virgin t =
  let news = ref 0 in
  for i = 0 to size - 1 do
    let c = Char.code (Bytes.unsafe_get t i) in
    if c <> 0 then begin
      let b = bucket c in
      let v = Char.code (Bytes.unsafe_get virgin i) in
      if b land lnot v <> 0 then begin
        Bytes.unsafe_set virgin i (Char.chr (v lor b));
        incr news
      end
    end
  done;
  !news

(* Virgin maps store OR'd bucket bits, so the union of two campaigns'
   coverage is a per-cell bitwise or. *)
let merge ~into src =
  let news = ref 0 in
  for i = 0 to size - 1 do
    let s = Char.code (Bytes.unsafe_get src i) in
    if s <> 0 then begin
      let v = Char.code (Bytes.unsafe_get into i) in
      if s land lnot v <> 0 then begin
        Bytes.unsafe_set into i (Char.chr (v lor s));
        incr news
      end
    end
  done;
  !news

let snapshot = Bytes.copy

let diff t ~since =
  let news = ref 0 in
  for i = 0 to size - 1 do
    let c = Char.code (Bytes.unsafe_get t i) in
    if c land lnot (Char.code (Bytes.unsafe_get since i)) <> 0 then incr news
  done;
  !news

let hash t =
  let h = ref 0xcbf29ce484222325L in
  for i = 0 to size - 1 do
    let c = Char.code (Bytes.unsafe_get t i) in
    if c <> 0 then begin
      let v = Int64.of_int ((i lsl 8) lor bucket c) in
      h := Int64.mul (Int64.logxor !h v) 0x100000001b3L
    end
  done;
  !h

let is_set t i = Bytes.get t (i land mask) <> '\000'

let copy = Bytes.copy
