(* The map is backed by a flat byte buffer plus a bounded dirty-index
   list: every 0 -> nonzero transition records its cell index, so
   [reset] (run once per execution, on the hottest path) clears only the
   cells an execution actually touched instead of all 64 KiB. Scans
   ([merge_into], [diff], [hash], ...) walk the dirty list too. When an
   execution touches more cells than the list holds, the map falls back
   to whole-buffer operations ([saturated]) until the next [reset]. *)

type t = {
  buf : Bytes.t;
  mutable dirty : int array;
  mutable n_dirty : int;
  mutable saturated : bool;
}

let size = 65536

let mask = size - 1

(* Large enough that single executions (hundreds of cells) and whole
   campaign virgin maps (a few thousand) stay below it. *)
let dirty_cap = 4096

let create () =
  { buf = Bytes.make size '\000';
    dirty = Array.make dirty_cap 0;
    n_dirty = 0;
    saturated = false }

let mark t i =
  if not t.saturated then begin
    if t.n_dirty < dirty_cap then begin
      Array.unsafe_set t.dirty t.n_dirty i;
      t.n_dirty <- t.n_dirty + 1
    end
    else t.saturated <- true
  end

let reset t =
  if t.saturated then begin
    Bytes.fill t.buf 0 size '\000';
    t.saturated <- false
  end
  else
    for k = 0 to t.n_dirty - 1 do
      Bytes.unsafe_set t.buf (Array.unsafe_get t.dirty k) '\000'
    done;
  t.n_dirty <- 0

let hit t index =
  let i = index land mask in
  let v = Char.code (Bytes.unsafe_get t.buf i) in
  if v = 0 then mark t i;
  if v < 255 then Bytes.unsafe_set t.buf i (Char.unsafe_chr (v + 1))

(* Knuth multiplicative mixing keeps distinct (site, key) pairs well
   spread over the map, like AFL's random edge ids. *)
let probe t ~site ~key =
  let h = (site * 0x9E3779B1) lxor ((key + 1) * 0x85EBCA6B) in
  hit t (h lxor (h lsr 15))

(* [probe]'s xor-of-products folds the site id in linearly, so distinct
   (site, key) pairs can alias to one slot with nothing downstream able
   to tell (the edge map keeps it unchanged for bitmap compatibility
   with recorded campaigns). New slot families use this murmur-style
   finalizer instead: the site id is multiplied and re-avalanched so
   every site bit disturbs every output bit. *)
let mix ~site ~key =
  let h = (site + 1) * 0x9E3779B1 in
  let h = h lxor (h lsr 16) in
  let h = (h lxor ((key + 1) * 0x85EBCA6B)) * 0xC2B2AE35 in
  let h = h lxor (h lsr 13) in
  let h = h * 0x27D4EB2F in
  h lxor (h lsr 16)

let probe_mixed t ~site ~key = hit t (mix ~site ~key)

(* Dirty entries are unique (recorded only on 0 -> nonzero) and stay
   nonzero until the next [reset], so when the map is unsaturated the
   dirty prefix {e is} the nonzero cell set. *)
let count_nonzero t =
  if not t.saturated then t.n_dirty
  else begin
    let n = ref 0 in
    for i = 0 to size - 1 do
      if Bytes.unsafe_get t.buf i <> '\000' then incr n
    done;
    !n
  end

(* Nonzero cells within [lo, hi): lets one map carry two disjoint slot
   families (e.g. grammar rules below 0x8000, rule pairs above) that are
   counted separately but share the merge/diff/compact algebra. *)
let count_nonzero_in t ~lo ~hi =
  let n = ref 0 in
  if not t.saturated then
    for k = 0 to t.n_dirty - 1 do
      let i = Array.unsafe_get t.dirty k in
      if i >= lo && i < hi then incr n
    done
  else
    for i = lo to hi - 1 do
      if Bytes.unsafe_get t.buf i <> '\000' then incr n
    done;
  !n

let bucket = function
  | 0 -> 0
  | 1 -> 1
  | 2 -> 2
  | 3 -> 4
  | n when n < 8 -> 8
  | n when n < 16 -> 16
  | n when n < 32 -> 32
  | n when n < 128 -> 64
  | _ -> 128

let merge_cell ~news virgin i c =
  let b = bucket c in
  let v = Char.code (Bytes.unsafe_get virgin.buf i) in
  if b land lnot v <> 0 then begin
    if v = 0 then mark virgin i;
    Bytes.unsafe_set virgin.buf i (Char.unsafe_chr (v lor b));
    incr news
  end

let merge_into ~virgin t =
  let news = ref 0 in
  if not t.saturated then
    for k = 0 to t.n_dirty - 1 do
      let i = Array.unsafe_get t.dirty k in
      merge_cell ~news virgin i (Char.code (Bytes.unsafe_get t.buf i))
    done
  else
    for i = 0 to size - 1 do
      let c = Char.code (Bytes.unsafe_get t.buf i) in
      if c <> 0 then merge_cell ~news virgin i c
    done;
  !news

(* Virgin maps store OR'd bucket bits, so the union of two campaigns'
   coverage is a per-cell bitwise or. *)
let or_cell ~news into i s =
  let v = Char.code (Bytes.unsafe_get into.buf i) in
  if s land lnot v <> 0 then begin
    if v = 0 then mark into i;
    Bytes.unsafe_set into.buf i (Char.unsafe_chr (v lor s));
    incr news
  end

let merge ~into src =
  let news = ref 0 in
  if not src.saturated then
    for k = 0 to src.n_dirty - 1 do
      let i = Array.unsafe_get src.dirty k in
      or_cell ~news into i (Char.code (Bytes.unsafe_get src.buf i))
    done
  else
    for i = 0 to size - 1 do
      let s = Char.code (Bytes.unsafe_get src.buf i) in
      if s <> 0 then or_cell ~news into i s
    done;
  !news

let snapshot t =
  { buf = Bytes.copy t.buf;
    dirty = Array.copy t.dirty;
    n_dirty = t.n_dirty;
    saturated = t.saturated }

let load ~into src =
  reset into;
  if not src.saturated then begin
    for k = 0 to src.n_dirty - 1 do
      let i = Array.unsafe_get src.dirty k in
      Bytes.unsafe_set into.buf i (Bytes.unsafe_get src.buf i);
      Array.unsafe_set into.dirty k i
    done;
    into.n_dirty <- src.n_dirty
  end
  else begin
    Bytes.blit src.buf 0 into.buf 0 size;
    into.saturated <- true;
    into.n_dirty <- 0
  end

(* Like [merge_into] without the mutation: how many cells of the exec
   map [t] hold bucket bits the virgin map lacks. Generation bias ranks
   candidate testcases by this without polluting the virgin map. *)
let count_news ~virgin t =
  let news = ref 0 in
  let check i c =
    if bucket c land lnot (Char.code (Bytes.unsafe_get virgin.buf i)) <> 0
    then incr news
  in
  if not t.saturated then
    for k = 0 to t.n_dirty - 1 do
      let i = Array.unsafe_get t.dirty k in
      check i (Char.code (Bytes.unsafe_get t.buf i))
    done
  else
    for i = 0 to size - 1 do
      let c = Char.code (Bytes.unsafe_get t.buf i) in
      if c <> 0 then check i c
    done;
  !news

let diff t ~since =
  let news = ref 0 in
  if not t.saturated then
    for k = 0 to t.n_dirty - 1 do
      let i = Array.unsafe_get t.dirty k in
      let c = Char.code (Bytes.unsafe_get t.buf i) in
      if c land lnot (Char.code (Bytes.unsafe_get since.buf i)) <> 0 then
        incr news
    done
  else
    for i = 0 to size - 1 do
      let c = Char.code (Bytes.unsafe_get t.buf i) in
      if c land lnot (Char.code (Bytes.unsafe_get since.buf i)) <> 0 then
        incr news
    done;
  !news

let fnv h v = Int64.mul (Int64.logxor h v) 0x100000001b3L

(* The dirty list records insertion order, so sort it before hashing:
   the digest must match a whole-buffer ascending scan bit for bit. *)
let hash t =
  let h = ref 0xcbf29ce484222325L in
  if not t.saturated then begin
    let idx = Array.sub t.dirty 0 t.n_dirty in
    Array.sort compare idx;
    Array.iter
      (fun i ->
         let c = Char.code (Bytes.unsafe_get t.buf i) in
         h := fnv !h (Int64.of_int ((i lsl 8) lor bucket c)))
      idx
  end
  else
    for i = 0 to size - 1 do
      let c = Char.code (Bytes.unsafe_get t.buf i) in
      if c <> 0 then h := fnv !h (Int64.of_int ((i lsl 8) lor bucket c))
    done;
  !h

let is_set t i = Bytes.get t.buf (i land mask) <> '\000'

let copy = snapshot

(* Compact frozen form: just the touched cells, for callers that store
   many point-in-time maps (the prefix-snapshot cache keeps one per
   cached statement boundary). Copying and restoring cost O(touched)
   instead of O(map size). *)
type compact =
  | C_cells of { idx : int array; vals : Bytes.t }
  | C_full of Bytes.t  (* saturated source: fall back to the raw buffer *)

let compact t =
  if not t.saturated then begin
    let n = t.n_dirty in
    let idx = Array.sub t.dirty 0 n in
    let vals = Bytes.create n in
    for k = 0 to n - 1 do
      Bytes.unsafe_set vals k (Bytes.unsafe_get t.buf (Array.unsafe_get idx k))
    done;
    C_cells { idx; vals }
  end
  else C_full (Bytes.copy t.buf)

let load_compact ~into c =
  reset into;
  match c with
  | C_cells { idx; vals } ->
    let n = Array.length idx in
    for k = 0 to n - 1 do
      let i = Array.unsafe_get idx k in
      Bytes.unsafe_set into.buf i (Bytes.unsafe_get vals k);
      Array.unsafe_set into.dirty k i
    done;
    into.n_dirty <- n
  | C_full buf ->
    Bytes.blit buf 0 into.buf 0 size;
    into.saturated <- true;
    into.n_dirty <- 0

let compact_bytes = function
  | C_cells { idx; _ } -> 32 + (9 * Array.length idx)
  | C_full _ -> size + 16

(* Canonical serialisable form: ascending (index, value) pairs. The
   compact's own idx array is in touch order (and C_full is positional),
   so both arms sort/scan into the same ascending listing. *)
let compact_cells c =
  match c with
  | C_cells { idx; vals } ->
    let n = Array.length idx in
    let pairs = Array.init n (fun k -> (idx.(k), Char.code (Bytes.get vals k))) in
    Array.sort compare pairs;
    Array.to_list (Array.of_seq (Seq.filter (fun (_, v) -> v <> 0) (Array.to_seq pairs)))
  | C_full buf ->
    let acc = ref [] in
    for i = size - 1 downto 0 do
      let v = Char.code (Bytes.unsafe_get buf i) in
      if v <> 0 then acc := (i, v) :: !acc
    done;
    !acc

let compact_of_cells cells =
  (* Deduplicate through a scratch buffer: duplicate indices must not
     inflate the dirty count the C_cells loader reconstructs. *)
  let buf = Bytes.make size '\000' in
  let n = ref 0 in
  List.iter
    (fun (i, v) ->
       let i = i land mask in
       let v = max 0 (min 255 v) in
       if Bytes.get buf i = '\000' && v <> 0 then incr n;
       if v <> 0 then Bytes.set buf i (Char.chr v))
    cells;
  if !n > dirty_cap then C_full buf
  else begin
    let idx = Array.make !n 0 in
    let vals = Bytes.create !n in
    let k = ref 0 in
    for i = 0 to size - 1 do
      let v = Bytes.unsafe_get buf i in
      if v <> '\000' then begin
        idx.(!k) <- i;
        Bytes.set vals !k v;
        incr k
      end
    done;
    C_cells { idx; vals }
  end
