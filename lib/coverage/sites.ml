type family = {
  by_name : (string, int) Hashtbl.t;
  by_id : (int, string) Hashtbl.t;
  mutable next : int;
  limit : int;
  label : string;
}

let make_family ~label ~limit =
  { by_name = Hashtbl.create 512;
    by_id = Hashtbl.create 512;
    next = 0;
    limit;
    label }

(* The engine edge-probe family. Its id sequence is load-bearing: edge
   ids feed [Bitmap.probe] and recorded campaigns compare across builds,
   so nothing but engine instrumentation may allocate from it — the
   grammar family exists precisely so parser sites can't shift it. *)
let edges = make_family ~label:"edge" ~limit:Bitmap.size

(* Grammar-rule sites index the rule region of the grammar bitmap
   directly (cell = site id), and the rule region is the map's lower
   half (see {!Grammar}). *)
let grammar = make_family ~label:"grammar" ~limit:(Bitmap.size / 2)

let register_in fam name =
  match Hashtbl.find_opt fam.by_name name with
  | Some id -> id
  | None ->
    let id = fam.next in
    (* Site ids index bitmap regions directly; past the family limit
       they would wrap silently onto earlier sites' cells. Fail loudly
       instead. *)
    if id >= fam.limit then
      invalid_arg
        (Printf.sprintf
           "Coverage.Sites.register %S: %d %s sites exceed the %d-cell \
            bitmap domain"
           name (id + 1) fam.label fam.limit);
    fam.next <- id + 1;
    Hashtbl.replace fam.by_name name id;
    Hashtbl.replace fam.by_id id name;
    id

let count_in fam = fam.next

let name_in fam id = Hashtbl.find_opt fam.by_id id

let all_in fam =
  List.init fam.next (fun id ->
      (id, Option.value ~default:"?" (Hashtbl.find_opt fam.by_id id)))

let register = register_in edges

let count () = count_in edges

let name_of = name_in edges

let all () = all_in edges
