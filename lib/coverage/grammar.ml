(* Grammar-rule coverage lives in its own bitmap, split into two slot
   families: the lower half holds one cell per production site (the cell
   index IS the site id, so rules can never alias each other or anything
   else), the upper half holds (production x parent-production) pairs
   spread by the avalanching [Bitmap.mix]. Keeping both families in one
   map means the whole merge/diff/snapshot/compact algebra built for the
   edge map applies unchanged to grammar coverage. *)

let rule_region = Bitmap.size / 2

let rule_slot ~site =
  assert (site < rule_region);
  site

let pair_slot ~site ~parent =
  rule_region lor (Bitmap.mix ~site ~key:parent land (rule_region - 1))

let record g ~site ~parent =
  Bitmap.hit g (rule_slot ~site);
  Bitmap.hit g (pair_slot ~site ~parent)

let rules g = Bitmap.count_nonzero_in g ~lo:0 ~hi:rule_region

let pairs g = Bitmap.count_nonzero_in g ~lo:rule_region ~hi:Bitmap.size
