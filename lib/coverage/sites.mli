(** Global registry of named coverage probe sites.

    Each instrumented branch point in MiniDB registers a stable name once
    at module initialisation ([let s = Sites.register "exec.select.sort"])
    and then fires [Bitmap.probe ~site:s ~key] during execution. Names make
    coverage reports and debugging legible.

    Sites live in {e families}, each with its own independent id
    sequence: the default {!edges} family holds the engine's edge
    probes, the {!grammar} family the parser's production and
    token-class sites. Separate sequences keep edge ids stable when
    grammar instrumentation grows (and vice versa) — registering a new
    parser production must never re-alias recorded edge coverage.

    Registration is not thread-safe: all sites must be registered at
    module initialisation, before campaign domains spawn. *)

type family

val edges : family
(** The engine edge-probe family; {!register}/{!count}/{!name_of}/{!all}
    are shorthands over it. *)

val grammar : family
(** Parser grammar-rule and lexer token-class sites. Ids index the rule
    region (the lower half) of the grammar bitmap directly, so this
    family's domain is [Bitmap.size / 2]. *)

val make_family : label:string -> limit:int -> family
(** A fresh family with its own id sequence, capped at [limit] ids.
    {!edges} and {!grammar} are the two the fuzzer uses; private
    families serve tests and tools that must not touch global state. *)

val register_in : family -> string -> int
(** Idempotent: registering the same name twice returns the same id.
    @raise Invalid_argument when the family would exceed its bitmap
    domain — site ids index bitmap cells directly, so overflowing
    would silently alias earlier sites. *)

val count_in : family -> int

val name_in : family -> int -> string option

val all_in : family -> (int * string) list

val register : string -> int
(** [register_in edges]. *)

val count : unit -> int
(** Number of registered edge sites. *)

val name_of : int -> string option

val all : unit -> (int * string) list
(** All registered edge sites, by id. *)
