(* legofuzz: command-line driver for the LEGO reproduction.

   Subcommands:
     fuzz       run one fuzzer on one simulated DBMS
     compare    run every fuzzer on one DBMS with the same budget
     bugs       print the seeded bug inventory (Table I data)
     affinities run LEGO briefly and dump the learned affinity map
     exec       execute a SQL file against a simulated DBMS *)

open Cmdliner

let profile_of_name name =
  match Dialects.Registry.by_name name with
  | Some p -> Ok p
  | None ->
    Error
      (`Msg
         (Printf.sprintf
            "unknown DBMS %S (try postgresql, mysql, mariadb, comdb2)" name))

let dialect_conv =
  Arg.conv
    ( (fun s -> profile_of_name s),
      fun fmt p -> Format.pp_print_string fmt (Minidb.Profile.name p) )

let dialect_arg =
  let doc = "Simulated DBMS: postgresql, mysql, mariadb or comdb2." in
  Arg.(
    value
    & opt dialect_conv Dialects.Registry.pg_sim
    & info [ "d"; "dialect" ] ~docv:"DBMS" ~doc)

let execs_arg =
  let doc = "Execution budget." in
  Arg.(value & opt int 50_000 & info [ "n"; "execs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed (campaigns are deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Number of parallel campaign shards (OCaml domains). 1 = the exact \
     sequential behaviour; each shard gets a distinct derived seed and \
     1/JOBS of the execution budget."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let sync_arg =
  let doc =
    "Executions between cross-shard coverage/crash syncs (jobs > 1 only)."
  in
  Arg.(
    value
    & opt int Fuzz.Sync.default_interval
    & info [ "sync-every" ] ~docv:"N" ~doc)

(* Validate the fuzzer name up front and return a shard factory: fuzzer
   construction is deferred into the shard's domain by the campaign
   engine (it executes the initial corpus). *)
let make_fuzzer name profile seed =
  let lego ~seq shard_id =
    let cfg =
      { Lego.Lego_fuzzer.default_config with
        seed = Fuzz.Campaign.shard_seed ~seed ~shard_id;
        sequence_oriented = seq }
    in
    Lego.Lego_fuzzer.fuzzer (Lego.Lego_fuzzer.create ~config:cfg profile)
  in
  let baseline create fuzzer shard_id =
    fuzzer (create ~seed:(Fuzz.Campaign.shard_seed ~seed ~shard_id) profile)
  in
  match String.lowercase_ascii name with
  | "lego" -> Ok (lego ~seq:true)
  | "lego-" | "lego_minus" -> Ok (lego ~seq:false)
  | "squirrel" ->
    Ok
      (baseline
         (fun ~seed p -> Baselines.Squirrel_sim.create ~seed p)
         Baselines.Squirrel_sim.fuzzer)
  | "sqlancer" ->
    Ok
      (baseline
         (fun ~seed p -> Baselines.Sqlancer_sim.create ~seed p)
         Baselines.Sqlancer_sim.fuzzer)
  | "sqlsmith" ->
    Ok
      (baseline
         (fun ~seed p -> Baselines.Sqlsmith_sim.create ~seed p)
         Baselines.Sqlsmith_sim.fuzzer)
  | other ->
    Error
      (`Msg
         (Printf.sprintf
            "unknown fuzzer %S (lego, lego-, squirrel, sqlancer, sqlsmith)"
            other))

let report name snap =
  Printf.printf
    "%-9s execs=%d branches=%d crashes(total)=%d crashes(unique)=%d\n" name
    snap.Fuzz.Driver.st_execs snap.st_branches snap.st_total_crashes
    snap.st_unique_crashes;
  if snap.st_bugs <> [] then
    Printf.printf "  bugs: %s\n" (String.concat ", " snap.st_bugs)

let report_shards (res : Fuzz.Campaign.result) =
  if List.length res.cg_shards > 1 then begin
    List.iter
      (fun (sh : Fuzz.Campaign.shard) ->
         Printf.printf
           "  shard %d: execs=%d branches=%d crashes(unique)=%d\n" sh.sh_id
           sh.sh_snapshot.Fuzz.Driver.st_execs
           sh.sh_snapshot.st_branches sh.sh_snapshot.st_unique_crashes)
      res.cg_shards;
    Printf.printf "  sync rounds: %d\n" res.cg_sync_rounds
  end

(* --- fuzz ------------------------------------------------------------ *)

let fuzz_cmd =
  let fuzzer_arg =
    let doc = "Fuzzer: lego, lego-, squirrel, sqlancer or sqlsmith." in
    Arg.(
      value & opt string "lego" & info [ "f"; "fuzzer" ] ~docv:"FUZZER" ~doc)
  in
  let save_arg =
    let doc = "Directory to write one reduced .sql reproducer per bug." in
    Arg.(value & opt (some string) None & info [ "o"; "save" ] ~docv:"DIR" ~doc)
  in
  let run fuzzer profile execs seed jobs sync_every save =
    match make_fuzzer fuzzer profile seed with
    | Error (`Msg m) ->
      prerr_endline m;
      exit 2
    | Ok make ->
      let jobs = max 1 jobs in
      Printf.printf "fuzzing %s with %s, %d executions, %d job(s)...\n%!"
        (Minidb.Profile.name profile) fuzzer execs jobs;
      let res =
        Fuzz.Campaign.run ~checkpoint_every:(max 1 (execs / 5))
          ~on_checkpoint:(fun s ->
              Printf.printf "  ... execs=%d branches=%d bugs=%d\n%!"
                s.Fuzz.Driver.st_execs s.st_branches (List.length s.st_bugs))
          ~sync_every ~jobs ~execs make
      in
      report fuzzer res.Fuzz.Campaign.cg_snapshot;
      report_shards res;
      (match save with
       | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
       | _ -> ());
      List.iter
        (fun ((c : Minidb.Fault.crash), testcase) ->
           Format.printf "@.%a@." Minidb.Fault.pp_crash c;
           match testcase with
           | None -> ()
           | Some tc ->
             (* ship a minimized reproducer, like the paper's Fig. 3/7 *)
             let bug_id = c.Minidb.Fault.c_bug.Minidb.Fault.bug_id in
             let reduced =
               (Fuzz.Reducer.reduce ~profile ~max_tries:256 ~bug_id tc)
                 .Fuzz.Reducer.r_testcase
             in
             let sql = Sqlcore.Sql_printer.testcase reduced in
             Printf.printf "reproducer (%d statements):\n%s\n"
               (List.length reduced) sql;
             (match save with
              | None -> ()
              | Some dir ->
                let path = Filename.concat dir (bug_id ^ ".sql") in
                Out_channel.with_open_text path (fun oc ->
                    Out_channel.output_string oc (sql ^ "\n"));
                Printf.printf "saved to %s\n" path))
        res.Fuzz.Campaign.cg_crashes
  in
  let term =
    Term.(const run $ fuzzer_arg $ dialect_arg $ execs_arg $ seed_arg
          $ jobs_arg $ sync_arg $ save_arg)
  in
  Cmd.v (Cmd.info "fuzz" ~doc:"Run one fuzzer on one simulated DBMS.") term

(* --- compare --------------------------------------------------------- *)

let compare_cmd =
  let run profile execs seed jobs sync_every =
    List.iter
      (fun name ->
         match make_fuzzer name profile seed with
         | Error _ -> ()
         | Ok make ->
           let res = Fuzz.Campaign.run ~sync_every ~jobs ~execs make in
           report name res.Fuzz.Campaign.cg_snapshot)
      [ "lego"; "lego-"; "squirrel"; "sqlancer"; "sqlsmith" ]
  in
  let term =
    Term.(const run $ dialect_arg $ execs_arg $ seed_arg $ jobs_arg
          $ sync_arg)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run every fuzzer on one DBMS with the same budget.")
    term

(* --- bugs ------------------------------------------------------------ *)

let bugs_cmd =
  let run profile =
    let bugs = Minidb.Profile.bugs profile in
    Printf.printf "%s: %d seeded bugs\n" (Minidb.Profile.name profile)
      (List.length bugs);
    List.iter
      (fun (b : Minidb.Fault.bug) ->
         Printf.printf "  %-12s %-10s %-5s %s\n" b.Minidb.Fault.bug_id
           b.Minidb.Fault.component
           (Minidb.Fault.kind_name b.Minidb.Fault.kind)
           b.Minidb.Fault.identifier)
      bugs
  in
  let term = Term.(const run $ dialect_arg) in
  Cmd.v
    (Cmd.info "bugs" ~doc:"Print the seeded bug inventory (Table I data).")
    term

(* --- affinities ------------------------------------------------------ *)

let affinities_cmd =
  let run profile execs seed =
    let cfg = { Lego.Lego_fuzzer.default_config with seed } in
    let t = Lego.Lego_fuzzer.create ~config:cfg profile in
    let _ = Fuzz.Driver.run_until_execs (Lego.Lego_fuzzer.fuzzer t) ~execs in
    let aff = Lego.Lego_fuzzer.affinities t in
    Printf.printf "%d affinities after %d executions on %s:\n"
      (Lego.Affinity.count aff) execs (Minidb.Profile.name profile);
    List.iter
      (fun (a, b) ->
         Printf.printf "  %s -> %s\n" (Sqlcore.Stmt_type.name a)
           (Sqlcore.Stmt_type.name b))
      (Lego.Affinity.pairs aff)
  in
  let term = Term.(const run $ dialect_arg $ execs_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "affinities"
       ~doc:"Run LEGO briefly and dump the learned type-affinity map.")
    term

(* --- exec ------------------------------------------------------------ *)

let exec_cmd =
  let file_arg =
    let doc = "SQL file to execute ('-' for stdin)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run profile file =
    let sql =
      if file = "-" then In_channel.input_all In_channel.stdin
      else In_channel.with_open_text file In_channel.input_all
    in
    match Sqlparser.Parser.parse_testcase sql with
    | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
    | Ok tc ->
      let cov = Coverage.Bitmap.create () in
      let engine = Minidb.Engine.create ~profile ~cov () in
      (try
         List.iter
           (fun stmt ->
              Printf.printf "%s;\n" (Sqlcore.Sql_printer.stmt stmt);
              match Minidb.Engine.exec_stmt engine stmt with
              | Minidb.Engine.Ok_result
                  (Minidb.Executor.Rows (headers, rows)) ->
                Printf.printf "  -> %s\n" (String.concat " | " headers);
                List.iter
                  (fun row ->
                     Printf.printf "     %s\n"
                       (String.concat " | "
                          (Array.to_list
                             (Array.map Storage.Value.to_display row))))
                  rows
              | Minidb.Engine.Ok_result (Minidb.Executor.Affected n) ->
                Printf.printf "  -> %d row(s)\n" n
              | Minidb.Engine.Ok_result (Minidb.Executor.Done msg) ->
                Printf.printf "  -> %s\n" msg
              | Minidb.Engine.Sql_failed e ->
                Printf.printf "  !! %s\n" (Minidb.Errors.message e))
           tc
       with Minidb.Fault.Crashed c ->
         Format.printf "@.*** server crash ***@.%a@." Minidb.Fault.pp_crash c);
      Printf.printf "\n%d branches covered\n"
        (Coverage.Bitmap.count_nonzero cov)
  in
  let term = Term.(const run $ dialect_arg $ file_arg) in
  Cmd.v
    (Cmd.info "exec" ~doc:"Execute a SQL file against a simulated DBMS.")
    term

(* --- reduce ----------------------------------------------------------- *)

let reduce_cmd =
  let file_arg =
    let doc = "SQL file holding the crashing test case ('-' for stdin)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let bug_arg =
    let doc =
      "Internal bug id to preserve (see the $(b,bugs) subcommand); when \
       omitted, the bug the case currently triggers is used."
    in
    Arg.(value & opt (some string) None & info [ "b"; "bug" ] ~docv:"ID" ~doc)
  in
  let run profile file bug_opt =
    let sql =
      if file = "-" then In_channel.input_all In_channel.stdin
      else In_channel.with_open_text file In_channel.input_all
    in
    match Sqlparser.Parser.parse_testcase sql with
    | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
    | Ok tc ->
      let bug_id =
        match bug_opt with
        | Some id -> Some id
        | None -> (
            let cov = Coverage.Bitmap.create () in
            let engine = Minidb.Engine.create ~profile ~cov () in
            match
              (Minidb.Engine.run_testcase engine tc).Minidb.Engine.rs_crash
            with
            | Some c -> Some c.Minidb.Fault.c_bug.Minidb.Fault.bug_id
            | None -> None)
      in
      (match bug_id with
       | None ->
         Printf.eprintf "the test case does not crash %s\n"
           (Minidb.Profile.name profile);
         exit 1
       | Some bug_id ->
         let out = Fuzz.Reducer.reduce ~profile ~bug_id tc in
         Printf.printf
           "-- reduced for %s: %d -> %d statements (%d oracle runs)\n%s\n"
           bug_id (List.length tc)
           (List.length out.Fuzz.Reducer.r_testcase)
           out.Fuzz.Reducer.r_tries
           (Sqlcore.Sql_printer.testcase out.Fuzz.Reducer.r_testcase))
  in
  let term = Term.(const run $ dialect_arg $ file_arg $ bug_arg) in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Shrink a crashing SQL test case while keeping the same bug.")
    term

let () =
  let doc = "LEGO (ICDE'23) sequence-oriented DBMS fuzzing, reproduced." in
  let info = Cmd.info "legofuzz" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fuzz_cmd; compare_cmd; bugs_cmd; affinities_cmd; exec_cmd;
            reduce_cmd ]))
