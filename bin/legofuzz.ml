(* legofuzz: command-line driver for the LEGO reproduction.

   Subcommands:
     fuzz       run one fuzzer on one simulated DBMS
     compare    run every fuzzer on one DBMS with the same budget
     report     render a recorded telemetry run (runs/*.jsonl)
     bugs       print the seeded bug inventory (Table I data)
     affinities run LEGO briefly and dump the learned affinity map
     exec       execute a SQL file against a simulated DBMS *)

open Cmdliner

let profile_of_name name =
  match Dialects.Registry.by_name name with
  | Some p -> Ok p
  | None ->
    Error
      (`Msg
         (Printf.sprintf
            "unknown DBMS %S (try postgresql, mysql, mariadb, comdb2)" name))

let dialect_conv =
  Arg.conv
    ( (fun s -> profile_of_name s),
      fun fmt p -> Format.pp_print_string fmt (Minidb.Profile.name p) )

let dialect_arg =
  let doc = "Simulated DBMS: postgresql, mysql, mariadb or comdb2." in
  Arg.(
    value
    & opt dialect_conv Dialects.Registry.pg_sim
    & info [ "d"; "dialect" ] ~docv:"DBMS" ~doc)

let execs_arg =
  let doc = "Execution budget." in
  Arg.(value & opt int 50_000 & info [ "n"; "execs" ] ~docv:"N" ~doc)

let seed_arg =
  let doc = "PRNG seed (campaigns are deterministic per seed)." in
  Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Number of parallel campaign shards (OCaml domains). 1 = the exact \
     sequential behaviour; each shard gets a distinct derived seed and \
     1/JOBS of the execution budget."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"JOBS" ~doc)

let sync_arg =
  let doc =
    "Executions between cross-shard coverage/crash syncs (jobs > 1 only)."
  in
  Arg.(
    value
    & opt int Fuzz.Sync.default_interval
    & info [ "sync-every" ] ~docv:"N" ~doc)

let onoff = Arg.enum [ ("on", true); ("off", false) ]

let sync_seeds_arg =
  let doc =
    "Bidirectional seed exchange between shards at sync rounds (jobs > 1 \
     only): shards publish their coverage-increasing seeds and import \
     each other's. $(b,on) or $(b,off)."
  in
  Arg.(value & opt onoff true & info [ "sync-seeds" ] ~docv:"on|off" ~doc)

let sync_affinities_arg =
  let doc =
    "Bidirectional type-affinity and AST-skeleton exchange between shards \
     at sync rounds (jobs > 1 only); imported affinities trigger LEGO's \
     sequence synthesis on the importing shard. $(b,on) or $(b,off)."
  in
  Arg.(
    value & opt onoff true & info [ "sync-affinities" ] ~docv:"on|off" ~doc)

let exchange_of ~sync_seeds ~sync_affinities =
  { Fuzz.Sync.ex_seeds = sync_seeds; ex_affinities = sync_affinities }

let oracles_arg =
  let doc =
    "Logic-bug oracles: replay every coverage-increasing, non-crashing \
     execution through the differential-plan, TLP-partitioning and \
     rewrite-consistency oracles (SQLancer-style) on a fault-free engine; \
     unique violations are reported and reduced like crashes. $(b,on) or \
     $(b,off)."
  in
  Arg.(value & opt onoff false & info [ "oracles" ] ~docv:"on|off" ~doc)

let exec_cache_arg =
  let doc =
    "Prefix-snapshot execution cache: seed statement prefixes are \
     captured as engine snapshots and mutants sharing a prefix resume \
     from the snapshot instead of replaying it. Outcomes — coverage, \
     crashes, oracle verdicts — are identical to cold replays; only \
     wall-clock changes. $(b,on) (1024 entries), $(b,off), or an entry \
     count."
  in
  let cache_conv =
    let parse s =
      match String.lowercase_ascii s with
      | "on" -> Ok 1024
      | "off" -> Ok 0
      | s -> (
          match int_of_string_opt s with
          | Some n when n >= 0 -> Ok n
          | _ ->
            Error
              (`Msg
                 (Printf.sprintf
                    "invalid exec-cache %S (on, off or an entry count)" s)))
    in
    let print ppf n =
      Format.pp_print_string ppf (if n = 0 then "off" else string_of_int n)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value & opt cache_conv 1024 & info [ "exec-cache" ] ~docv:"on|off|N" ~doc)

let feedback_arg =
  let doc =
    "Coverage feedback driving the keep/analyze decision: $(b,edges) (the \
     engine edge bitmap — the paper's signal and the default, \
     byte-identical to earlier builds), $(b,grammar) (the grammar \
     rule-pair bitmap: every executed case is re-parsed and productions \
     fired under their parent production count as coverage), or \
     $(b,both) (either signal; also biases generation toward unfired \
     rule pairs)."
  in
  let feedback_conv =
    let parse s =
      match Fuzz.Harness.feedback_of_string (String.lowercase_ascii s) with
      | Some f -> Ok f
      | None ->
        Error
          (`Msg
             (Printf.sprintf "invalid feedback %S (edges, grammar or both)" s))
    in
    let print ppf f =
      Format.pp_print_string ppf (Fuzz.Harness.feedback_to_string f)
    in
    Arg.conv (parse, print)
  in
  Arg.(
    value
    & opt feedback_conv Fuzz.Harness.Edges
    & info [ "feedback" ] ~docv:"edges|grammar|both" ~doc)

let cow_arg =
  let doc =
    "Copy-on-write engine snapshots: $(b,on) takes snapshots as O(1) \
     persistent-map handle copies, $(b,off) reverts to physical deep \
     copies (the pre-refactor representation, kept as an ablation). \
     Outcomes are identical either way; only wall-clock and snapshot \
     memory accounting change."
  in
  Arg.(value & opt onoff true & info [ "cow" ] ~docv:"on|off" ~doc)

let sessions_arg =
  let doc =
    "Concurrent sessions for the interleaving-schedule phase: after the \
     single-session campaign, corpus sequences are assigned to SESSIONS \
     sessions of one shared engine and executed under synthesized \
     interleavings (real OCaml domains, deterministic turnstile order), \
     hunting concurrency bugs and isolation violations no single-session \
     campaign can reach. 1 disables the phase."
  in
  Arg.(value & opt int 1 & info [ "sessions" ] ~docv:"N" ~doc)

let schedules_arg =
  let doc =
    "Interleaving schedules to synthesize and execute when --sessions > 1 \
     (each runs live-concurrent, then serially replayed for triage)."
  in
  Arg.(value & opt int 64 & info [ "schedules" ] ~docv:"M" ~doc)

let telemetry_arg =
  let doc =
    "Telemetry recording: $(b,none) (console only; byte-identical output \
     to pre-telemetry builds for the same seed) or $(b,jsonl) (also \
     record every event under runs/ as a .jsonl stream for $(b,legofuzz \
     report))."
  in
  Arg.(
    value
    & opt (enum [ ("none", `None); ("jsonl", `Jsonl) ]) `None
    & info [ "telemetry" ] ~docv:"MODE" ~doc)

let json_arg =
  let doc =
    "Machine-readable output: print every telemetry event to stdout as \
     one JSON object per line instead of the human summary."
  in
  Arg.(value & flag & info [ "json" ] ~doc)

(* Validate the fuzzer name up front and return a shard factory: fuzzer
   construction is deferred into the shard's domain by the campaign
   engine (it executes the initial corpus). The factory itself lives in
   Farm.Spec so that a store's meta.json resolves to exactly the same
   fuzzer assembly the CLI uses. *)
let make_fuzzer ?(oracles = false) ?(exec_cache = 0)
    ?(feedback = Fuzz.Harness.Edges) name profile seed =
  match
    Farm.Spec.fuzzer_factory ~oracles ~exec_cache ~feedback ~name ~profile
      ~seed ()
  with
  | Ok make -> Ok make
  | Error m -> Error (`Msg m)

(* --- telemetry plumbing ---------------------------------------------- *)

let point_of ~series (s : Fuzz.Driver.snapshot) =
  { Telemetry.Event.p_series = series;
    p_iteration = s.Fuzz.Driver.st_iteration;
    p_execs = s.st_execs;
    p_branches = s.st_branches;
    p_crashes_total = s.st_total_crashes;
    p_crashes_unique = s.st_unique_crashes;
    p_bugs = s.st_bugs }

(* The one summary formatter (human sink) serves both [fuzz] and
   [compare]; [shards] controls whether per-shard lines appear
   ([compare] never printed them). *)
let summary_event ~name ?(shards = []) ~sync_rounds ~wall_s
    (snap : Fuzz.Driver.snapshot) =
  Telemetry.Event.Summary
    { point = point_of ~series:name snap;
      shards;
      sync_rounds;
      wall_s = Some wall_s;
      execs_per_sec =
        (if wall_s > 0.0 then
           Some (float_of_int snap.Fuzz.Driver.st_execs /. wall_s)
         else None) }

let shard_points (res : Fuzz.Campaign.result) =
  List.map
    (fun (sh : Fuzz.Campaign.shard) ->
       point_of
         ~series:(Printf.sprintf "shard-%d" sh.sh_id)
         sh.sh_snapshot)
    res.cg_shards

(* Console sink + optional JSONL recorder; returns the sink stack and the
   recorder path (when recording) for the closing "telemetry:" note. *)
let sink_stack ~json ~telemetry ~name =
  let console =
    if json then Telemetry.Sink.json_lines ()
    else Telemetry.Sink.human ()
  in
  match telemetry with
  | `None -> (console, None)
  | `Jsonl ->
    let recorder, path = Telemetry.Sink.jsonl ~name () in
    (Telemetry.Sink.tee [ console; recorder ], Some path)

let registry_dumps ?aggregate ~prefix sink (res : Fuzz.Campaign.result) =
  let aggregate =
    match aggregate with Some r -> r | None -> res.Fuzz.Campaign.cg_metrics
  in
  Telemetry.Sink.emit sink
    (Telemetry.Event.Registry_dump
       { series = prefix ^ "aggregate"; registry = aggregate });
  if List.length res.cg_shards > 1 then
    List.iter
      (fun (sh : Fuzz.Campaign.shard) ->
         Telemetry.Sink.emit sink
           (Telemetry.Event.Registry_dump
              { series = Printf.sprintf "%sshard-%d" prefix sh.sh_id;
                registry =
                  Fuzz.Harness.metrics sh.sh_fuzzer.Fuzz.Driver.f_harness }))
      res.cg_shards

(* --- fuzz ------------------------------------------------------------ *)

let fuzz_cmd =
  let fuzzer_arg =
    let doc = "Fuzzer: lego, lego-, squirrel, sqlancer or sqlsmith." in
    Arg.(
      value & opt string "lego" & info [ "f"; "fuzzer" ] ~docv:"FUZZER" ~doc)
  in
  let save_arg =
    let doc = "Directory to write one reduced .sql reproducer per bug." in
    Arg.(value & opt (some string) None & info [ "o"; "save" ] ~docv:"DIR" ~doc)
  in
  let store_arg =
    let doc =
      "Persist the campaign's final state (corpus, affinities, skeletons, \
       virgin maps, dedup keys) as a store generation under \
       runs/$(docv)/store, resumable with $(b,legofuzz resume) $(docv)."
    in
    Arg.(
      value & opt (some string) None & info [ "store" ] ~docv:"CAMPAIGN" ~doc)
  in
  let run fuzzer profile execs seed jobs sync_every sync_seeds
      sync_affinities oracles exec_cache feedback cow sessions schedules
      telemetry json save store =
    Minidb.Catalog.set_copy_on_write cow;
    (match store with
     | Some id when not (Farm.Spec.valid_id id) ->
       Printf.eprintf
         "invalid campaign id %S (letters, digits, '.', '_', '-')\n" id;
       exit 2
     | _ -> ());
    match make_fuzzer ~oracles ~exec_cache ~feedback fuzzer profile seed with
    | Error (`Msg m) ->
      prerr_endline m;
      exit 2
    | Ok make ->
      let jobs = max 1 jobs in
      let exchange = exchange_of ~sync_seeds ~sync_affinities in
      let dialect = Minidb.Profile.name profile in
      if not json then
        Printf.printf "fuzzing %s with %s, %d executions, %d job(s)...\n%!"
          dialect fuzzer execs jobs;
      let sink, recording =
        sink_stack ~json ~telemetry
          ~name:(Printf.sprintf "fuzz-%s-%s-seed%d" dialect fuzzer seed)
      in
      Telemetry.Sink.emit sink
        (Telemetry.Event.Meta
           [ ("command", Telemetry.Json.Str "fuzz");
             ("fuzzer", Telemetry.Json.Str fuzzer);
             ("dialect", Telemetry.Json.Str dialect);
             ("seed", Telemetry.Json.Int seed);
             ("execs", Telemetry.Json.Int execs);
             ("jobs", Telemetry.Json.Int jobs);
             ("sync_every", Telemetry.Json.Int sync_every);
             ("sync_seeds", Telemetry.Json.Bool sync_seeds);
             ("sync_affinities", Telemetry.Json.Bool sync_affinities);
             ("oracles", Telemetry.Json.Bool oracles);
             ("exec_cache", Telemetry.Json.Int exec_cache);
             ("feedback",
              Telemetry.Json.Str (Fuzz.Harness.feedback_to_string feedback));
             ("sessions", Telemetry.Json.Int sessions);
             ("schedules", Telemetry.Json.Int schedules) ]);
      let start = Telemetry.Span.now_s () in
      let res =
        Fuzz.Campaign.run ~checkpoint_every:(max 1 (execs / 5)) ~sync_every
          ~exchange ~sink ~jobs ~execs make
      in
      let wall_s = Telemetry.Span.now_s () -. start in
      Telemetry.Sink.emit sink
        (summary_event ~name:fuzzer ~shards:(shard_points res)
           ~sync_rounds:res.Fuzz.Campaign.cg_sync_rounds ~wall_s
           res.Fuzz.Campaign.cg_snapshot);
      (match save with
       | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
       | _ -> ());
      (* Post-campaign registry: the reduce stage happens after the
         campaign's own metrics were snapshotted, so its span and try
         counter are collected separately and merged into the aggregate
         registry dump below — "reduce" then shows up in the stage
         breakdown of [legofuzz report] next to execute/triage. *)
      let post = Telemetry.Registry.create () in
      let sp_reduce = Telemetry.Span.stage post "reduce" in
      let c_tries = Telemetry.Registry.counter post "reducer.tries" in
      List.iter
        (fun ((c : Minidb.Fault.crash), testcase) ->
           if not json then Format.printf "@.%a@." Minidb.Fault.pp_crash c;
           match testcase with
           | None -> ()
           | Some tc ->
             (* ship a minimized reproducer, like the paper's Fig. 3/7 *)
             let bug_id = c.Minidb.Fault.c_bug.Minidb.Fault.bug_id in
             let out =
               Telemetry.Span.time sp_reduce (fun () ->
                   Fuzz.Reducer.reduce ~profile ~max_tries:256 ~bug_id tc)
             in
             Telemetry.Registry.incr ~by:out.Fuzz.Reducer.r_tries c_tries;
             let reduced = out.Fuzz.Reducer.r_testcase in
             let sql = Sqlcore.Sql_printer.testcase reduced in
             if not json then
               Printf.printf "reproducer (%d statements):\n%s\n"
                 (List.length reduced) sql;
             (match save with
              | None -> ()
              | Some dir ->
                let path = Filename.concat dir (bug_id ^ ".sql") in
                Out_channel.with_open_text path (fun oc ->
                    Out_channel.output_string oc (sql ^ "\n"));
                if not json then Printf.printf "saved to %s\n" path))
        res.Fuzz.Campaign.cg_crashes;
      (* Logic-bug findings: same pipeline as crashes — print, reduce with
         the violation's oracle as the interestingness predicate, save. *)
      List.iteri
        (fun i ((v : Oracle.Violation.t), testcase) ->
           if not json then Format.printf "@.%a@." Oracle.Violation.pp v;
           match testcase with
           | None -> ()
           | Some tc ->
             let suite = Oracle.Suite.create profile in
             let key = Oracle.Violation.key v in
             let pred candidate =
               List.exists
                 (fun v' -> String.equal (Oracle.Violation.key v') key)
                 (Oracle.Suite.check suite candidate)
                   .Oracle.Suite.oc_violations
             in
             let out =
               Telemetry.Span.time sp_reduce (fun () ->
                   Fuzz.Reducer.reduce_with ~pred ~max_tries:256 tc)
             in
             Telemetry.Registry.incr ~by:out.Fuzz.Reducer.r_tries c_tries;
             let reduced = out.Fuzz.Reducer.r_testcase in
             let sql = Sqlcore.Sql_printer.testcase reduced in
             if not json then
               Printf.printf "reproducer (%d statements):\n%s\n"
                 (List.length reduced) sql;
             (match save with
              | None -> ()
              | Some dir ->
                let path =
                  Filename.concat dir
                    (Printf.sprintf "logic-%s-%d.sql" v.Oracle.Violation.vi_oracle i)
                in
                Out_channel.with_open_text path (fun oc ->
                    Out_channel.output_string oc (sql ^ "\n"));
                if not json then Printf.printf "saved to %s\n" path))
        res.Fuzz.Campaign.cg_logic;
      (* Interleaving-schedule phase: corpus sequences across concurrent
         sessions of one shared engine. Its schedule.* / session.* /
         oracle.isolation.* counters join the aggregate registry dump. *)
      let sched_metrics = Telemetry.Registry.create () in
      if sessions > 1 && schedules > 0 then begin
        let corpus = Fuzz.Corpus.initial profile in
        let sr =
          Fuzz.Schedule.campaign ~metrics:sched_metrics ~profile ~sessions
            ~schedules ~seed ~corpus ()
        in
        if not json then begin
          Printf.printf
            "\nschedules: %d executed (%d steps, %d sessions), %d replay \
             mismatch(es)\n"
            sr.Fuzz.Schedule.sr_schedules sr.Fuzz.Schedule.sr_steps sessions
            sr.Fuzz.Schedule.sr_replay_mismatch;
          List.iter
            (fun (bug_id, steps) ->
               Printf.printf
                 "\nconcurrency crash %s, minimized schedule (%d steps):\n%s\n"
                 bug_id (Array.length steps)
                 (Fuzz.Schedule.render_steps steps))
            sr.Fuzz.Schedule.sr_crash_repros;
          List.iter
            (fun (key, steps) ->
               Printf.printf
                 "\nisolation violation %s, minimized schedule (%d steps):\n%s\n"
                 key (Array.length steps)
                 (Fuzz.Schedule.render_steps steps))
            sr.Fuzz.Schedule.sr_violation_repros
        end
      end;
      let aggregate = Telemetry.Registry.snapshot res.Fuzz.Campaign.cg_metrics in
      Telemetry.Registry.merge ~into:aggregate post;
      Telemetry.Registry.merge ~into:aggregate sched_metrics;
      registry_dumps ~aggregate ~prefix:"" sink res;
      (* Persist the campaign as a resumable store generation. *)
      (match store with
       | None -> ()
       | Some id ->
         let campaign =
           { Farm.Store.sc_id = id; sc_fuzzer = fuzzer; sc_dialect = dialect;
             sc_quirks = []; sc_feedback = feedback; sc_oracles = oracles;
             sc_exec_cache = exec_cache; sc_seed = seed; sc_budget = execs }
         in
         let snapshot =
           Farm.Resume.capture
             ~prior:(Farm.Store.empty_snapshot campaign)
             ~campaign
             ~progress:
               { Farm.Store.pr_execs_done =
                   res.Fuzz.Campaign.cg_snapshot.Fuzz.Driver.st_execs;
                 pr_epoch = 0 }
             res
         in
         let dir = Farm.Store.store_dir id in
         let gen = Farm.Store.save ~dir snapshot in
         if not json then Printf.printf "store: %s (generation %d)\n" dir gen);
      Telemetry.Sink.close sink;
      match recording with
      | Some path when not json -> Printf.printf "telemetry: %s\n" path
      | _ -> ()
  in
  let term =
    Term.(const run $ fuzzer_arg $ dialect_arg $ execs_arg $ seed_arg
          $ jobs_arg $ sync_arg $ sync_seeds_arg $ sync_affinities_arg
          $ oracles_arg $ exec_cache_arg $ feedback_arg $ cow_arg
          $ sessions_arg $ schedules_arg $ telemetry_arg $ json_arg
          $ save_arg $ store_arg)
  in
  Cmd.v (Cmd.info "fuzz" ~doc:"Run one fuzzer on one simulated DBMS.") term

(* --- compare --------------------------------------------------------- *)

let compare_cmd =
  let run profile execs seed jobs sync_every sync_seeds sync_affinities
      exec_cache feedback telemetry json =
    let dialect = Minidb.Profile.name profile in
    let exchange = exchange_of ~sync_seeds ~sync_affinities in
    let sink, recording =
      sink_stack ~json ~telemetry
        ~name:(Printf.sprintf "compare-%s-seed%d" dialect seed)
    in
    Telemetry.Sink.emit sink
      (Telemetry.Event.Meta
         [ ("command", Telemetry.Json.Str "compare");
           ("dialect", Telemetry.Json.Str dialect);
           ("seed", Telemetry.Json.Int seed);
           ("execs", Telemetry.Json.Int execs);
           ("jobs", Telemetry.Json.Int jobs);
           ("sync_every", Telemetry.Json.Int sync_every);
           ("sync_seeds", Telemetry.Json.Bool sync_seeds);
           ("sync_affinities", Telemetry.Json.Bool sync_affinities);
           ("exec_cache", Telemetry.Json.Int exec_cache);
           ("feedback",
            Telemetry.Json.Str (Fuzz.Harness.feedback_to_string feedback)) ]);
    List.iter
      (fun name ->
         match make_fuzzer ~exec_cache ~feedback name profile seed with
         | Error _ -> ()
         | Ok make ->
           (* The series prefix keeps the five fuzzers' checkpoint series
              apart in one recorded stream ("lego/aggregate", ...); the
              human sink only voices the unprefixed "aggregate" series,
              so compare's console output stays exactly summary lines. *)
           let prefix = name ^ "/" in
           let start = Telemetry.Span.now_s () in
           let res =
             Fuzz.Campaign.run ~sync_every ~exchange ~sink
               ~series_prefix:prefix ~jobs ~execs make
           in
           let wall_s = Telemetry.Span.now_s () -. start in
           Telemetry.Sink.emit sink
             (summary_event ~name
                ~sync_rounds:res.Fuzz.Campaign.cg_sync_rounds ~wall_s
                res.Fuzz.Campaign.cg_snapshot);
           registry_dumps ~prefix sink res)
      [ "lego"; "lego-"; "squirrel"; "sqlancer"; "sqlsmith" ];
    Telemetry.Sink.close sink;
    match recording with
    | Some path when not json -> Printf.printf "telemetry: %s\n" path
    | _ -> ()
  in
  let term =
    Term.(const run $ dialect_arg $ execs_arg $ seed_arg $ jobs_arg
          $ sync_arg $ sync_seeds_arg $ sync_affinities_arg $ exec_cache_arg
          $ feedback_arg $ telemetry_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Run every fuzzer on one DBMS with the same budget.")
    term

(* --- resume ---------------------------------------------------------- *)

let resume_cmd =
  let id_arg =
    let doc = "Campaign id: the store under runs/$(docv)/store." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CAMPAIGN" ~doc)
  in
  let execs_opt_arg =
    let doc =
      "Run N $(i,additional) executions, extending the stored budget; \
       without it the campaign runs its unspent remainder."
    in
    Arg.(value & opt (some int) None & info [ "n"; "execs" ] ~docv:"N" ~doc)
  in
  let run id execs jobs sync_every cow telemetry json =
    Minidb.Catalog.set_copy_on_write cow;
    let jobs = max 1 jobs in
    let dir = Farm.Store.store_dir id in
    let run_dir = Filename.concat (Telemetry.Sink.runs_dir ()) id in
    Farm.Store.ensure_dir run_dir;
    (* Resumed segments append to the campaign's own events.jsonl, so one
       stream carries every epoch; the Meta event's resumed_from field
       marks each boundary. *)
    let console =
      if json then Telemetry.Sink.json_lines () else Telemetry.Sink.human ()
    in
    let sink, recording =
      match telemetry with
      | `None -> (console, None)
      | `Jsonl ->
        let recorder, path =
          Telemetry.Sink.jsonl ~dir:run_dir ~append:true ~name:"events" ()
        in
        (Telemetry.Sink.tee [ console; recorder ], Some path)
    in
    let start = Telemetry.Span.now_s () in
    match Farm.Resume.run ~jobs ?execs ~sync_every ~sink ~dir () with
    | Error e ->
      Telemetry.Sink.close sink;
      prerr_endline e;
      exit 1
    | Ok out ->
      let wall_s = Telemetry.Span.now_s () -. start in
      let res = out.Farm.Resume.rs_result in
      List.iter
        (fun w -> Printf.eprintf "warning: %s\n" w)
        out.Farm.Resume.rs_warnings;
      if not json then
        Printf.printf
          "resumed %s from generation %d (epoch %d): +%d execs (%d/%d \
           total), generation %d written\n"
          id out.Farm.Resume.rs_from_generation out.Farm.Resume.rs_epoch
          out.Farm.Resume.rs_executed out.Farm.Resume.rs_execs_done
          out.Farm.Resume.rs_budget out.Farm.Resume.rs_generation;
      Telemetry.Sink.emit sink
        (summary_event
           ~name:out.Farm.Resume.rs_campaign.Farm.Store.sc_fuzzer
           ~shards:(shard_points res)
           ~sync_rounds:res.Fuzz.Campaign.cg_sync_rounds ~wall_s
           res.Fuzz.Campaign.cg_snapshot);
      registry_dumps ~prefix:"" sink res;
      Telemetry.Sink.close sink;
      match recording with
      | Some path when not json -> Printf.printf "telemetry: %s\n" path
      | _ -> ()
  in
  let term =
    Term.(const run $ id_arg $ execs_opt_arg $ jobs_arg $ sync_arg $ cow_arg
          $ telemetry_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "resume"
       ~doc:
         "Resume a stored campaign from its last good store generation: \
          rebuild the fuzzer, preload corpus/affinities/skeletons/virgin \
          maps/dedup keys, and continue the budget without re-reporting \
          old findings.")
    term

(* --- worker (internal) ----------------------------------------------- *)

(* The farm worker process entrypoint: spawned by `farm --workers N`,
   never run by hand. stdout carries protocol lines only, so the
   human-facing chatter other commands print must stay off this path. *)
let worker_cmd =
  let id_arg =
    let doc = "Worker slot id (tags store generation namespaces)." in
    Arg.(required & opt (some int) None & info [ "worker-id" ] ~docv:"K" ~doc)
  in
  let runs_dir_arg =
    let doc = "Runs directory the campaign stores live under." in
    Arg.(
      value & opt (some string) None & info [ "runs-dir" ] ~docv:"DIR" ~doc)
  in
  let hb_arg =
    let doc = "Executions between mid-round heartbeats." in
    Arg.(value & opt int 500 & info [ "heartbeat-execs" ] ~docv:"N" ~doc)
  in
  let run worker runs_dir heartbeat_execs cow =
    Minidb.Catalog.set_copy_on_write cow;
    Farm.Worker.serve ?runs_dir ~heartbeat_execs ~worker stdin stdout
  in
  let term =
    Term.(const run $ id_arg $ runs_dir_arg $ hb_arg $ cow_arg)
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "(internal) Farm worker process: serves farm rounds over a \
          line-framed JSON protocol on stdin/stdout. Spawned by \
          $(b,legofuzz farm --workers N); not meant to be run by hand.")
    term

(* --- farm ------------------------------------------------------------ *)

let farm_cmd =
  let spec_arg =
    let doc =
      "Farm spec: a JSON file listing campaigns (id, fuzzer, dialect, \
       budget, optional quirks/feedback/oracles/exec_cache/seed) and the \
       global total_execs / round_execs / workers / policy knobs."
    in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"SPEC.json" ~doc)
  in
  let workers_arg =
    let doc =
      "Run round slices in N spawned worker processes (the multi-process \
       backend: each worker is a separate $(b,legofuzz worker) process, \
       coordinated over pipes, merging results through store generation \
       namespaces). 0 (default) keeps the in-process domain pool sized by \
       the spec's $(b,workers) field."
    in
    Arg.(value & opt int 0 & info [ "workers" ] ~docv:"N" ~doc)
  in
  let hb_timeout_arg =
    let doc =
      "Seconds of mid-round silence after which a worker process is \
       declared wedged, killed and its round re-queued (multi-process \
       backend only)."
    in
    Arg.(value & opt float 30. & info [ "heartbeat-timeout" ] ~docv:"S" ~doc)
  in
  let run spec_path workers heartbeat_timeout cow telemetry json =
    Minidb.Catalog.set_copy_on_write cow;
    match Farm.Spec.of_file spec_path with
    | Error e ->
      Printf.eprintf "%s: %s\n" spec_path e;
      exit 2
    | Ok spec ->
      let sink, recording = sink_stack ~json ~telemetry ~name:"farm" in
      if not json then
        Printf.printf
          "farm: %d campaign(s), %d total execs, %d per round, %s, %s \
           policy\n%!"
          (List.length spec.Farm.Spec.fs_campaigns)
          spec.Farm.Spec.fs_total_execs spec.Farm.Spec.fs_round_execs
          (if workers > 0 then
             Printf.sprintf "%d worker process(es)" workers
           else
             Printf.sprintf "%d domain worker(s)" spec.Farm.Spec.fs_workers)
          (Farm.Spec.policy_to_string spec.Farm.Spec.fs_policy);
      let start = Telemetry.Span.now_s () in
      let result =
        if workers > 0 then
          let worker_argv k =
            [| Sys.executable_name; "worker"; "--worker-id";
               string_of_int k; "--runs-dir"; Telemetry.Sink.runs_dir ();
               "--cow"; (if cow then "on" else "off") |]
          in
          Farm.Scheduler.run_processes ~sink ~worker_cmd:worker_argv
            ~heartbeat_timeout ~workers spec
        else Farm.Scheduler.run ~sink spec
      in
      (match result with
       | Error e ->
         Telemetry.Sink.close sink;
         prerr_endline e;
         exit 1
       | Ok res ->
         let wall_s = Telemetry.Span.now_s () -. start in
         List.iter
           (fun w -> Printf.eprintf "warning: %s\n" w)
           res.Farm.Scheduler.fr_warnings;
         if not json then begin
           Printf.printf "farm done: %d round(s), %d execs dealt, %.1fs\n"
             res.Farm.Scheduler.fr_rounds res.Farm.Scheduler.fr_allocated
             wall_s;
           List.iter
             (fun (c : Farm.Scheduler.campaign_result) ->
                Printf.printf
                  "  %-16s execs=%d/%d keys=%d(+%d) crashes(unique)=%d \
                   gen=%d%s%s%s\n"
                  c.Farm.Scheduler.fc_campaign.Farm.Store.sc_id
                  c.fc_execs_done c.fc_campaign.Farm.Store.sc_budget
                  c.fc_coverage_keys c.fc_new_keys c.fc_crashes_unique
                  c.fc_generation
                  (match c.fc_resumed_from with
                   | Some g -> Printf.sprintf " resumed-from=%d" g
                   | None -> "")
                  (if c.fc_finished then " finished" else "")
                  (match c.fc_error with
                   | Some e -> " error: " ^ e
                   | None -> ""))
             res.Farm.Scheduler.fr_campaigns
         end;
         Telemetry.Sink.close sink;
         match recording with
         | Some path when not json -> Printf.printf "telemetry: %s\n" path
         | _ -> ())
  in
  let term =
    Term.(const run $ spec_arg $ workers_arg $ hb_timeout_arg $ cow_arg
          $ telemetry_arg $ json_arg)
  in
  Cmd.v
    (Cmd.info "farm"
       ~doc:
         "Run a farm of campaigns over a domain pool — or, with \
          $(b,--workers N), over N spawned worker processes — \
          reallocating the execution budget each round with UCB1 over \
          new-coverage-key rewards; every campaign persists a resumable \
          store generation per round.")
    term

(* --- report ---------------------------------------------------------- *)

let report_cmd =
  let file_arg =
    let doc = "Recorded telemetry run (a runs/*.jsonl file)." in
    Arg.(
      required & pos 0 (some string) None & info [] ~docv:"RUN.jsonl" ~doc)
  in
  let run file =
    let lines =
      In_channel.with_open_text file (fun ic ->
          In_channel.input_lines ic)
    in
    match Telemetry.Report.parse_lines lines with
    | Error msg ->
      Printf.eprintf "%s: %s\n" file msg;
      exit 1
    | Ok events -> print_string (Telemetry.Report.render events)
  in
  let term = Term.(const run $ file_arg) in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Render a recorded run: coverage-over-time series and \
          stage-time breakdown.")
    term

(* --- bugs ------------------------------------------------------------ *)

let bugs_cmd =
  let run profile =
    let bugs = Minidb.Profile.bugs profile in
    Printf.printf "%s: %d seeded bugs\n" (Minidb.Profile.name profile)
      (List.length bugs);
    List.iter
      (fun (b : Minidb.Fault.bug) ->
         Printf.printf "  %-12s %-10s %-5s %s\n" b.Minidb.Fault.bug_id
           b.Minidb.Fault.component
           (Minidb.Fault.kind_name b.Minidb.Fault.kind)
           b.Minidb.Fault.identifier)
      bugs
  in
  let term = Term.(const run $ dialect_arg) in
  Cmd.v
    (Cmd.info "bugs" ~doc:"Print the seeded bug inventory (Table I data).")
    term

(* --- affinities ------------------------------------------------------ *)

let affinities_cmd =
  let run profile execs seed =
    let cfg = { Lego.Lego_fuzzer.default_config with seed } in
    let t = Lego.Lego_fuzzer.create ~config:cfg profile in
    let _ = Fuzz.Driver.run_until_execs (Lego.Lego_fuzzer.fuzzer t) ~execs in
    let aff = Lego.Lego_fuzzer.affinities t in
    Printf.printf "%d affinities after %d executions on %s:\n"
      (Lego.Affinity.count aff) execs (Minidb.Profile.name profile);
    List.iter
      (fun (a, b) ->
         Printf.printf "  %s -> %s\n" (Sqlcore.Stmt_type.name a)
           (Sqlcore.Stmt_type.name b))
      (Lego.Affinity.pairs aff)
  in
  let term = Term.(const run $ dialect_arg $ execs_arg $ seed_arg) in
  Cmd.v
    (Cmd.info "affinities"
       ~doc:"Run LEGO briefly and dump the learned type-affinity map.")
    term

(* --- exec ------------------------------------------------------------ *)

let exec_cmd =
  let file_arg =
    let doc = "SQL file to execute ('-' for stdin)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let run profile file =
    let sql =
      if file = "-" then In_channel.input_all In_channel.stdin
      else In_channel.with_open_text file In_channel.input_all
    in
    match Sqlparser.Parser.parse_testcase sql with
    | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
    | Ok tc ->
      let cov = Coverage.Bitmap.create () in
      let engine = Minidb.Engine.create ~profile ~cov () in
      (try
         List.iter
           (fun stmt ->
              Printf.printf "%s;\n" (Sqlcore.Sql_printer.stmt stmt);
              match Minidb.Engine.exec_stmt engine stmt with
              | Minidb.Engine.Ok_result
                  (Minidb.Executor.Rows (headers, rows)) ->
                Printf.printf "  -> %s\n" (String.concat " | " headers);
                List.iter
                  (fun row ->
                     Printf.printf "     %s\n"
                       (String.concat " | "
                          (Array.to_list
                             (Array.map Storage.Value.to_display row))))
                  rows
              | Minidb.Engine.Ok_result (Minidb.Executor.Affected n) ->
                Printf.printf "  -> %d row(s)\n" n
              | Minidb.Engine.Ok_result (Minidb.Executor.Done msg) ->
                Printf.printf "  -> %s\n" msg
              | Minidb.Engine.Sql_failed e ->
                Printf.printf "  !! %s\n" (Minidb.Errors.message e))
           tc
       with Minidb.Fault.Crashed c ->
         Format.printf "@.*** server crash ***@.%a@." Minidb.Fault.pp_crash c);
      Printf.printf "\n%d branches covered\n"
        (Coverage.Bitmap.count_nonzero cov)
  in
  let term = Term.(const run $ dialect_arg $ file_arg) in
  Cmd.v
    (Cmd.info "exec" ~doc:"Execute a SQL file against a simulated DBMS.")
    term

(* --- serve ----------------------------------------------------------- *)

let serve_cmd =
  let sessions_arg =
    let doc = "Number of concurrent sessions served by the pool." in
    Arg.(value & opt int 4 & info [ "sessions" ] ~docv:"N" ~doc)
  in
  let run profile sessions =
    let sessions = max 1 sessions in
    let cov = Coverage.Bitmap.create () in
    let pool =
      Server.Session_pool.create ~sessions ~profile ~cov ()
    in
    Printf.printf
      "legofuzz serve: %s, %d session(s). \"@N SQL\" runs SQL on session \
       N, \"@N\" switches; \\q quits.\n%!"
      (Minidb.Profile.name profile) sessions;
    let current = ref 0 in
    let rec loop () =
      Printf.printf "s%d> " !current;
      flush stdout;
      match In_channel.input_line In_channel.stdin with
      | None -> ()
      | Some line ->
        let line = String.trim line in
        if line = "\\q" || line = "exit" then ()
        else if line = "" then loop ()
        else begin
          let sql, sid =
            if String.length line > 1 && line.[0] = '@' then begin
              let rest, digits =
                match String.index_opt line ' ' with
                | Some sp ->
                  ( String.sub line (sp + 1) (String.length line - sp - 1),
                    String.sub line 1 (sp - 1) )
                | None -> ("", String.sub line 1 (String.length line - 1))
              in
              match int_of_string_opt digits with
              | Some n when n >= 0 && n < sessions -> (rest, n)
              | _ ->
                Printf.printf "no such session %s (0..%d)\n" digits
                  (sessions - 1);
                ("", !current)
            end
            else (line, !current)
          in
          current := sid;
          (if sql <> "" then
             match Sqlparser.Parser.parse_testcase sql with
             | Error msg -> Printf.printf "parse error: %s\n" msg
             | Ok stmts ->
               List.iter
                 (fun stmt ->
                    print_endline
                      (Server.Wire.render
                         (Server.Session_pool.exec pool ~session:sid stmt)))
                 stmts);
          loop ()
        end
    in
    loop ()
  in
  let term = Term.(const run $ dialect_arg $ sessions_arg) in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve a multi-session MiniDB REPL on stdio: one shared store, \
          per-session transaction state, typed wire responses.")
    term

(* --- reduce ----------------------------------------------------------- *)

let reduce_cmd =
  let file_arg =
    let doc = "SQL file holding the crashing test case ('-' for stdin)." in
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE" ~doc)
  in
  let bug_arg =
    let doc =
      "Internal bug id to preserve (see the $(b,bugs) subcommand); when \
       omitted, the bug the case currently triggers is used."
    in
    Arg.(value & opt (some string) None & info [ "b"; "bug" ] ~docv:"ID" ~doc)
  in
  let run profile file bug_opt =
    let sql =
      if file = "-" then In_channel.input_all In_channel.stdin
      else In_channel.with_open_text file In_channel.input_all
    in
    match Sqlparser.Parser.parse_testcase sql with
    | Error msg ->
      Printf.eprintf "parse error: %s\n" msg;
      exit 1
    | Ok tc ->
      let bug_id =
        match bug_opt with
        | Some id -> Some id
        | None -> (
            let cov = Coverage.Bitmap.create () in
            let engine = Minidb.Engine.create ~profile ~cov () in
            match
              (Minidb.Engine.run_testcase engine tc).Minidb.Engine.rs_crash
            with
            | Some c -> Some c.Minidb.Fault.c_bug.Minidb.Fault.bug_id
            | None -> None)
      in
      (match bug_id with
       | None ->
         Printf.eprintf "the test case does not crash %s\n"
           (Minidb.Profile.name profile);
         exit 1
       | Some bug_id ->
         let out = Fuzz.Reducer.reduce ~profile ~bug_id tc in
         Printf.printf
           "-- reduced for %s: %d -> %d statements (%d oracle runs)\n%s\n"
           bug_id (List.length tc)
           (List.length out.Fuzz.Reducer.r_testcase)
           out.Fuzz.Reducer.r_tries
           (Sqlcore.Sql_printer.testcase out.Fuzz.Reducer.r_testcase))
  in
  let term = Term.(const run $ dialect_arg $ file_arg $ bug_arg) in
  Cmd.v
    (Cmd.info "reduce"
       ~doc:"Shrink a crashing SQL test case while keeping the same bug.")
    term

let () =
  (* The fuzzing loop allocates short-lived values at a high rate
     (ASTs, sequence nodes, RNG state); the default 2 MiB minor heap
     forces a minor collection every few thousand executions. A 4 MiB
     nursery halves the collections while still fitting in L2/L3 (a
     much larger nursery measures slower: every allocation sweeps cold
     cache lines). Changes no observable behavior. *)
  Gc.set { (Gc.get ()) with minor_heap_size = 512 * 1024 };
  let doc = "LEGO (ICDE'23) sequence-oriented DBMS fuzzing, reproduced." in
  let info = Cmd.info "legofuzz" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [ fuzz_cmd; compare_cmd; farm_cmd; worker_cmd; resume_cmd;
            report_cmd; bugs_cmd; affinities_cmd; exec_cmd; serve_cmd;
            reduce_cmd ]))
