(* Shared campaign machinery for the paper-reproduction benches.

   One campaign = one fuzzer on one simulated DBMS with a fixed execution
   budget (the stand-in for the paper's 24-hour wall-clock runs; see
   DESIGN.md). Campaign results feed Figure 9 and Tables II-IV; extending
   a LEGO campaign to a larger budget gives the "continuous fuzzing" data
   of Table I. *)

type campaign = {
  c_fuzzer : string;
  c_dialect : string;
  c_series : (int * int) list;  (* (execs, branches) checkpoints *)
  c_final : Fuzz.Driver.snapshot;
  c_fz : Fuzz.Driver.fuzzer;
      (* shard 0's fuzzer; with REPRO_JOBS=1 (the default) this is the
         whole campaign, as before the campaign-engine refactor *)
  c_corpus : unit -> Sqlcore.Ast.testcase list;
      (* generated corpus across every shard (Table II / IV censuses) *)
  c_lego : Lego.Lego_fuzzer.t option;  (* shard 0's, for LEGO campaigns *)
  c_metrics : Telemetry.Registry.t;
      (* campaign-wide metric registry (stage times, engine counters) *)
  c_wall_s : float;  (* wall-clock annotation, never determinism-checked *)
}

let budget =
  match Sys.getenv_opt "REPRO_EXECS" with
  | Some s -> (try max 1000 (int_of_string s) with Failure _ -> 60_000)
  | None -> 60_000

(* Campaign shards (OCaml domains) per campaign. The default of 1 keeps
   the published EXPERIMENTS.md numbers bit-for-bit reproducible; raise
   it on multicore hardware for wall-clock speed at equal total budget. *)
let jobs =
  match Sys.getenv_opt "REPRO_JOBS" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 1)
  | None -> 1

let sync_every =
  match Sys.getenv_opt "REPRO_SYNC" with
  | Some s ->
    (try max 1 (int_of_string s) with Failure _ -> Fuzz.Sync.default_interval)
  | None -> Fuzz.Sync.default_interval

(* REPRO_EXCHANGE=off disables the bidirectional seed/affinity exchange
   at sync rounds (jobs > 1 only); the default matches the CLI: on. *)
let exchange =
  match Sys.getenv_opt "REPRO_EXCHANGE" with
  | Some "off" -> Fuzz.Sync.exchange_off
  | _ -> Fuzz.Sync.exchange_all

(* REPRO_ORACLES=on replays coverage-increasing executions through the
   logic-bug oracle suite; the default matches the CLI: off, keeping the
   published EXPERIMENTS.md numbers and exec rates untouched. *)
let oracles =
  match Sys.getenv_opt "REPRO_ORACLES" with
  | Some "on" -> true
  | _ -> false

(* REPRO_EXEC_CACHE=on (or an entry count) enables the prefix-snapshot
   execution cache in every campaign harness; the default matches the
   CLI-off behaviour so published numbers stay byte-identical. The
   cache-ablation bench overrides it per campaign. *)
let exec_cache =
  match Sys.getenv_opt "REPRO_EXEC_CACHE" with
  | Some "on" -> 1024
  | Some ("off" | "") | None -> 0
  | Some s -> (try max 0 (int_of_string s) with Failure _ -> 0)

(* REPRO_FEEDBACK=grammar|both switches the coverage signal driving the
   keep/analyze decision to the grammar rule-pair bitmap (DESIGN.md §15);
   the default matches the CLI: edges, byte-identical to earlier builds.
   The feedback-ablation bench overrides it per campaign regardless of
   the global setting. *)
let feedback =
  match Sys.getenv_opt "REPRO_FEEDBACK" with
  | Some s -> (
      match Fuzz.Harness.feedback_of_string (String.lowercase_ascii s) with
      | Some f -> f
      | None -> Fuzz.Harness.Edges)
  | None -> Fuzz.Harness.Edges

(* REPRO_COW=off reverts engine snapshots to the pre-refactor physical
   deep copies for the whole bench run (DESIGN.md §13); the default is
   the O(1) persistent-map copy. The cow-ablation bench toggles this
   per campaign regardless of the global setting. *)
let cow =
  match Sys.getenv_opt "REPRO_COW" with
  | Some ("off" | "0" | "deep") -> false
  | _ -> true

(* REPRO_SESSIONS / REPRO_SCHEDULES scale the interleaving-schedule
   ablation: the widest session-pool width measured, and how many
   schedules each width synthesizes and executes. *)
let sessions =
  match Sys.getenv_opt "REPRO_SESSIONS" with
  | Some s -> (try max 2 (int_of_string s) with Failure _ -> 4)
  | None -> 4

let schedules =
  match Sys.getenv_opt "REPRO_SCHEDULES" with
  | Some s -> (try max 1 (int_of_string s) with Failure _ -> 128)
  | None -> 128

let () = Minidb.Catalog.set_copy_on_write cow

(* One shard's execution harness, when any harness-level feature
   (oracles, exec cache, grammar feedback) is enabled; [None] lets the
   fuzzer build its own default harness, as before those features
   existed. *)
let campaign_harness ?(exec_cache = exec_cache) ?(feedback = feedback)
    profile =
  if oracles || exec_cache > 0 || feedback <> Fuzz.Harness.Edges then
    Some
      (Fuzz.Harness.create ~profile ~exec_cache ~feedback
         ?oracles:
           (if oracles then Some (Oracle.Suite.create profile) else None)
         ())
  else None

let continuous_budget = budget * 3

let dialects = Dialects.Registry.all

let dialect_name p = Minidb.Profile.name p

(* Keep the checkpoint count fixed so the Fig. 9 series is readable. *)
let checkpoint_every = max 1 (budget / 6)

(* With REPRO_TELEMETRY=jsonl every bench campaign records its event
   stream into one shared runs/bench-campaigns.jsonl, series-prefixed
   "<fuzzer>-<dialect>/", for legofuzz report. *)
let bench_sink =
  lazy
    (match Sys.getenv_opt "REPRO_TELEMETRY" with
     | Some "jsonl" ->
       let sink, path = Telemetry.Sink.jsonl ~name:"bench-campaigns" () in
       Printf.printf "telemetry: recording to %s\n%!" path;
       Some sink
     | _ -> None)

(* A campaign maker: [factory shard_id] builds one shard's fuzzer (called
   inside the shard's domain by the campaign engine). [jobs], [exchange]
   and [sync_every] default to the REPRO_JOBS / REPRO_EXCHANGE /
   REPRO_SYNC environment configuration; the exchange-ablation bench
   overrides all three. *)
let run_campaign ?(execs = budget) ?(jobs = jobs) ?(exchange = exchange)
    ?(sync_every = sync_every) ?series_prefix profile (name, factory) =
  let series = ref [] in
  let lego0 = ref None in
  let make shard_id =
    let fz, lego = factory shard_id in
    if shard_id = 0 then lego0 := lego;
    fz
  in
  let series_prefix =
    match series_prefix with
    | Some p -> p
    | None -> Printf.sprintf "%s-%s/" name (dialect_name profile)
  in
  let sink =
    match Lazy.force bench_sink with
    | Some s -> s
    | None -> Telemetry.Sink.null
  in
  let start = Telemetry.Span.now_s () in
  let res =
    Fuzz.Campaign.run ~checkpoint_every
      ~on_checkpoint:(fun cp ->
          let snap = cp.Fuzz.Driver.cp_snapshot in
          series := (snap.Fuzz.Driver.st_execs, snap.st_branches) :: !series)
      ~sync_every ~exchange ~sink ~series_prefix ~jobs ~execs make
  in
  let wall_s = Telemetry.Span.now_s () -. start in
  let final = res.Fuzz.Campaign.cg_snapshot in
  let shards = res.Fuzz.Campaign.cg_shards in
  { c_fuzzer = name;
    c_dialect = dialect_name profile;
    c_series =
      List.rev ((final.Fuzz.Driver.st_execs, final.st_branches) :: !series);
    c_final = final;
    c_fz = (List.hd shards).Fuzz.Campaign.sh_fuzzer;
    c_corpus =
      (fun () ->
         List.concat_map
           (fun sh -> sh.Fuzz.Campaign.sh_fuzzer.Fuzz.Driver.f_corpus ())
           shards);
    c_lego = !lego0;
    c_metrics = res.Fuzz.Campaign.cg_metrics;
    c_wall_s = wall_s }

let make_lego ?(seq = true) ?(max_seq_len = 5) ?(seed = 1)
    ?(exec_cache = exec_cache) ?(feedback = feedback) profile =
  ( (if seq then "LEGO" else "LEGO-"),
    fun shard_id ->
      let config =
        { Lego.Lego_fuzzer.default_config with
          sequence_oriented = seq;
          max_seq_len;
          seed = Fuzz.Campaign.shard_seed ~seed ~shard_id }
      in
      let t =
        Lego.Lego_fuzzer.create ~config
          ?harness:(campaign_harness ~exec_cache ~feedback profile) profile
      in
      (Lego.Lego_fuzzer.fuzzer t, Some t) )

let make_baseline name create fuzzer ?(seed = 1) profile =
  ( name,
    fun shard_id ->
      (fuzzer
         (create
            ~seed:(Fuzz.Campaign.shard_seed ~seed ~shard_id)
            ~harness:(campaign_harness profile) profile),
       None) )

(* Fraction of executions that restored a cached prefix ([nan] when the
   cache was off: no lookups at all). The denominator is hits + misses
   only: unhinted single-session executions land in [cache.bypass] and
   interleaving-schedule executions in [cache.schedule_bypass], and
   neither belongs in a prefix-restore rate — a campaign with a long
   schedule phase must report the same hit rate as one without. *)
let cache_hit_rate c =
  let hits = Telemetry.Registry.counter_value c.c_metrics "cache.hits" in
  let misses = Telemetry.Registry.counter_value c.c_metrics "cache.misses" in
  if hits + misses = 0 then nan
  else float_of_int hits /. float_of_int (hits + misses)

let execs_per_sec c =
  if c.c_wall_s > 0.0 then
    float_of_int c.c_final.Fuzz.Driver.st_execs /. c.c_wall_s
  else 0.0

let make_squirrel profile =
  make_baseline "SQUIRREL"
    (fun ~seed ~harness p -> Baselines.Squirrel_sim.create ~seed ?harness p)
    Baselines.Squirrel_sim.fuzzer profile

let make_sqlancer profile =
  make_baseline "SQLancer"
    (fun ~seed ~harness p -> Baselines.Sqlancer_sim.create ~seed ?harness p)
    Baselines.Sqlancer_sim.fuzzer profile

let make_sqlsmith profile =
  make_baseline "SQLsmith"
    (fun ~seed ~harness p -> Baselines.Sqlsmith_sim.create ~seed ?harness p)
    Baselines.Sqlsmith_sim.fuzzer profile

(* --- table rendering ------------------------------------------------ *)

let hr width = print_endline (String.make width '-')

let section title =
  print_newline ();
  hr 78;
  Printf.printf "%s\n" title;
  hr 78

let print_row widths cells =
  let padded =
    List.map2
      (fun w c -> Printf.sprintf "%-*s" w c)
      widths cells
  in
  print_endline (String.concat "  " padded)

let pct_improvement a b =
  if b = 0 then 0.0 else 100.0 *. (float_of_int a /. float_of_int b -. 1.0)
